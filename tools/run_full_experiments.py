"""Run every experiment at full default scale and save the reports.

Development tool backing EXPERIMENTS.md: writes one report per
experiment under benchmarks/results/full/ and a combined log.

Run:  python tools/run_full_experiments.py [--scale 1.0]
"""

import argparse
import time
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_experiment

OUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "full"


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("names", nargs="*", default=[])
    args = parser.parse_args()

    OUT.mkdir(parents=True, exist_ok=True)
    names = args.names or list(EXPERIMENTS)
    for name in names:
        started = time.time()
        report = run_experiment(name, scale=args.scale)
        elapsed = time.time() - started
        (OUT / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
        print(f"{name}: {elapsed:.1f}s -> {OUT / (name + '.txt')}")


if __name__ == "__main__":
    main()
