"""Run every experiment at full default scale and save the reports.

Development tool backing EXPERIMENTS.md: writes one report per
experiment under benchmarks/results/full/ (override with ``--out``),
a combined deterministic summary (``summary.txt``: per-experiment
status + report SHA-256, no timings — byte-identical across reruns and
resumes), and per-experiment checkpoints under ``<out>/.checkpoints``.
A failing experiment is reported and skipped rather than aborting the
run; the console summary line always carries the total elapsed time,
and the exit status is non-zero if anything raised.

An interrupted run resumes with ``--resume``: experiments with a valid
checkpoint (same scale) are served from their snapshot, everything
else is recomputed, and the final ``summary.txt`` comes out identical
to an uninterrupted run's.

Run:  python tools/run_full_experiments.py [--scale 1.0] [--jobs N]
      [--out DIR] [--resume] [names...]
"""

import argparse
import hashlib
import sys
import time
import traceback
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.resilience.checkpoint import CheckpointStore
from repro.traces.cache import cache_stats
from repro.util.atomic import atomic_write_text

DEFAULT_OUT = (
    Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "full"
)


def write_summary(out: Path, scale: float, statuses) -> Path:
    """Publish the deterministic run summary (no timings, no cache
    counters — nothing that varies between a fresh and a resumed run)."""
    lines = [f"scale {scale}"]
    failed = [name for name, digest in statuses if digest is None]
    for name, digest in statuses:
        lines.append(
            f"{name} FAILED -" if digest is None else f"{name} ok {digest}"
        )
    lines.append(
        f"total {len(statuses)} experiments, "
        f"{len(statuses) - len(failed)} ok, {len(failed)} failed"
    )
    path = out / "summary.txt"
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sweep-shaped experiments "
            "(0 = one per CPU; default: $REPRO_JOBS, else serial)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help="output directory for reports, checkpoints and the summary",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="serve experiments already checkpointed at this scale",
    )
    parser.add_argument("names", nargs="*", default=[])
    args = parser.parse_args(argv)

    out = args.out
    out.mkdir(parents=True, exist_ok=True)
    store = CheckpointStore(
        out / ".checkpoints", meta={"scale": args.scale}
    )
    names = args.names or list(EXPERIMENTS)
    overall_started = time.perf_counter()
    statuses = []  # (name, report sha256 hex or None for a failure)
    failures = []
    for name in names:
        if args.resume:
            cached = store.load(name)
            if cached is not None:
                report = cached["report"]
                (out / f"{name}.txt").write_text(
                    report + "\n", encoding="utf-8"
                )
                statuses.append((name, _digest(report)))
                print(f"{name}: from checkpoint -> {out / (name + '.txt')}")
                continue
        started = time.perf_counter()
        try:
            report = run_experiment(name, scale=args.scale, jobs=args.jobs)
        except Exception:
            failures.append(name)
            statuses.append((name, None))
            print(f"{name}: FAILED after {time.perf_counter() - started:.1f}s")
            traceback.print_exc()
            continue
        elapsed = time.perf_counter() - started
        (out / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
        store.store(name, {"report": report})
        statuses.append((name, _digest(report)))
        print(f"{name}: {elapsed:.1f}s -> {out / (name + '.txt')}")

    total = time.perf_counter() - overall_started
    ok = len(names) - len(failures)
    stats = cache_stats()
    summary_path = write_summary(out, args.scale, statuses)
    print(
        f"trace cache: {stats['hits']} hits, "
        f"{stats['misses']} regenerated, {stats['stores']} stored"
        + (f", {stats['errors']} errors" if stats["errors"] else "")
    )
    print(f"summary -> {summary_path}")
    print(
        f"total: {total:.1f}s for {len(names)} experiments "
        f"({ok} ok, {len(failures)} failed"
        + (f": {', '.join(failures)})" if failures else ")")
    )
    return 1 if failures else 0


def _digest(report: str) -> str:
    return hashlib.sha256(report.encode("utf-8")).hexdigest()[:16]


if __name__ == "__main__":
    sys.exit(main())
