"""Run every experiment at full default scale and save the reports.

Development tool backing EXPERIMENTS.md: writes one report per
experiment under benchmarks/results/full/ and a combined log.  A failing
experiment is reported and skipped rather than aborting the run; the
final summary line always carries the total elapsed time, and the exit
status is non-zero if anything raised.

Run:  python tools/run_full_experiments.py [--scale 1.0] [--jobs N]
"""

import argparse
import sys
import time
import traceback
from pathlib import Path

from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.traces.cache import cache_stats

OUT = Path(__file__).resolve().parent.parent / "benchmarks" / "results" / "full"


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for sweep-shaped experiments "
            "(0 = one per CPU; default: $REPRO_JOBS, else serial)"
        ),
    )
    parser.add_argument("names", nargs="*", default=[])
    args = parser.parse_args()

    OUT.mkdir(parents=True, exist_ok=True)
    names = args.names or list(EXPERIMENTS)
    overall_started = time.time()
    failures = []
    for name in names:
        started = time.time()
        try:
            report = run_experiment(name, scale=args.scale, jobs=args.jobs)
        except Exception:
            failures.append(name)
            print(f"{name}: FAILED after {time.time() - started:.1f}s")
            traceback.print_exc()
            continue
        elapsed = time.time() - started
        (OUT / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
        print(f"{name}: {elapsed:.1f}s -> {OUT / (name + '.txt')}")

    total = time.time() - overall_started
    ok = len(names) - len(failures)
    stats = cache_stats()
    print(
        f"trace cache: {stats['hits']} hits, "
        f"{stats['misses']} regenerated, {stats['stores']} stored"
        + (f", {stats['errors']} errors" if stats["errors"] else "")
    )
    print(
        f"total: {total:.1f}s for {len(names)} experiments "
        f"({ok} ok, {len(failures)} failed"
        + (f": {', '.join(failures)})" if failures else ")")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
