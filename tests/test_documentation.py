"""Meta-tests: documentation coverage of the public API.

Deliverable-level guarantee: every public module, class, function and
method in ``repro`` carries a docstring.  A new public name without one
fails here, keeping the API documented as the library grows.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_public_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Interface overrides inherit their contract's docs.
                inherited = any(
                    getattr(base, method_name, None) is not None
                    and getattr(base, method_name).__doc__
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )


def test_every_public_package_reexports_all():
    """Every package __init__ defines __all__ (the public surface)."""
    for module in MODULES:
        if hasattr(module, "__path__"):  # packages only
            assert hasattr(module, "__all__"), (
                f"package {module.__name__} lacks __all__"
            )
