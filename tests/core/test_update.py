"""Tests for update-policy parsing."""

import pytest

from repro.core.update import UpdatePolicy


class TestUpdatePolicy:
    def test_parse_strings(self):
        assert UpdatePolicy.parse("partial") is UpdatePolicy.PARTIAL
        assert UpdatePolicy.parse("TOTAL") is UpdatePolicy.TOTAL
        assert UpdatePolicy.parse("Lazy") is UpdatePolicy.LAZY

    def test_parse_passthrough(self):
        assert UpdatePolicy.parse(UpdatePolicy.PARTIAL) is UpdatePolicy.PARTIAL

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown update policy"):
            UpdatePolicy.parse("sometimes")
        with pytest.raises(ValueError):
            UpdatePolicy.parse(None)

    def test_values(self):
        assert {p.value for p in UpdatePolicy} == {"total", "partial", "lazy"}
