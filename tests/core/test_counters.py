"""Tests for saturating counters and counter arrays."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.counters import (
    CounterArray,
    SaturatingCounter,
    counter_init_value,
)


class TestInitValue:
    def test_one_bit(self):
        assert counter_init_value(1, True) == 1
        assert counter_init_value(1, False) == 0

    def test_two_bit_weak(self):
        assert counter_init_value(2, True) == 2  # weakly taken
        assert counter_init_value(2, False) == 1  # weakly not taken

    def test_three_bit(self):
        assert counter_init_value(3, True) == 4
        assert counter_init_value(3, False) == 3

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            counter_init_value(0, True)


class TestSaturatingCounter:
    def test_default_is_weakly_taken(self):
        c = SaturatingCounter(bits=2)
        assert c.value == 2
        assert c.prediction is True

    def test_two_bit_state_machine(self):
        c = SaturatingCounter(bits=2, value=0)
        transitions = []
        for taken in (True, True, True, False, False, False, False):
            c.update(taken)
            transitions.append(c.value)
        # 0 -T-> 1 -T-> 2 -T-> 3 -N-> 2 -N-> 1 -N-> 0 -N-> 0 (saturate)
        assert transitions == [1, 2, 3, 2, 1, 0, 0]

    def test_one_bit_flips(self):
        c = SaturatingCounter(bits=1, value=0)
        assert c.prediction is False
        c.update(True)
        assert c.prediction is True
        c.update(True)
        assert c.value == 1  # saturated

    def test_hysteresis(self):
        """A strongly-taken 2-bit counter survives one not-taken."""
        c = SaturatingCounter(bits=2, value=3)
        c.update(False)
        assert c.prediction is True
        c.update(False)
        assert c.prediction is False

    def test_is_saturated(self):
        assert SaturatingCounter(bits=2, value=0).is_saturated
        assert SaturatingCounter(bits=2, value=3).is_saturated
        assert not SaturatingCounter(bits=2, value=2).is_saturated

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=4)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=2, value=-1)
        with pytest.raises(ValueError):
            SaturatingCounter(bits=0)

    @given(
        st.integers(min_value=1, max_value=4),
        st.lists(st.booleans(), max_size=40),
    )
    def test_value_always_in_range(self, bits, outcomes):
        c = SaturatingCounter(bits=bits)
        for taken in outcomes:
            c.update(taken)
            assert 0 <= c.value <= (1 << bits) - 1

    @given(st.lists(st.booleans(), min_size=2, max_size=40))
    def test_converges_to_constant_stream(self, outcomes):
        """After two identical outcomes a 2-bit counter predicts them."""
        c = SaturatingCounter(bits=2)
        direction = outcomes[0]
        for __ in range(2):
            c.update(direction)
        assert c.prediction == direction


class TestCounterArray:
    def test_default_initial_weakly_taken(self):
        bank = CounterArray(8, bits=2)
        assert all(v == 2 for v in bank.values)
        assert bank.prediction(0) is True

    def test_update_matches_scalar_counter(self):
        bank = CounterArray(4, bits=2, initial=1)
        scalar = SaturatingCounter(bits=2, value=1)
        import random

        rng = random.Random(3)
        for __ in range(200):
            taken = rng.random() < 0.6
            bank.update(2, taken)
            scalar.update(taken)
            assert bank.counter(2) == scalar.value
            assert bank.prediction(2) == scalar.prediction

    def test_entries_independent(self):
        bank = CounterArray(4, bits=2, initial=0)
        bank.update(1, True)
        assert bank.counter(1) == 1
        assert bank.counter(0) == 0

    def test_reset(self):
        bank = CounterArray(4, bits=2, initial=0)
        bank.update(0, True)
        bank.reset()
        assert bank.values == [2, 2, 2, 2]
        bank.reset(initial=0)
        assert bank.values == [0, 0, 0, 0]

    def test_len(self):
        assert len(CounterArray(16)) == 16

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            CounterArray(0)
        with pytest.raises(ValueError):
            CounterArray(4, bits=0)
        with pytest.raises(ValueError):
            CounterArray(4, bits=2, initial=9)
        with pytest.raises(ValueError):
            CounterArray(4).reset(initial=7)

    def test_one_bit_threshold(self):
        bank = CounterArray(2, bits=1, initial=0)
        assert bank.prediction(0) is False
        bank.update(0, True)
        assert bank.prediction(0) is True
