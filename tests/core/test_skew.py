"""Tests for the skewing-function family (paper section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.skew import (
    decompose,
    disperses,
    naive_family,
    pack_vector,
    shuffle_h,
    shuffle_h_inverse,
    skew_f0,
    skew_f1,
    skew_f2,
    skew_function_family,
    xor_shift_family,
)

WIDTHS = st.integers(min_value=2, max_value=16)


class TestShuffleH:
    def test_known_values_width_4(self):
        # H(y4 y3 y2 y1) = (y4^y1, y4, y3, y2)
        assert shuffle_h(0b0001, 4) == 0b1000  # y4=0,y1=1 -> msb 1
        assert shuffle_h(0b1000, 4) == 0b1100  # y4=1,y1=0 -> msb 1, then y4
        assert shuffle_h(0b1001, 4) == 0b0100  # y4^y1 = 0
        assert shuffle_h(0b0000, 4) == 0b0000

    def test_width_one_is_identity(self):
        assert shuffle_h(0, 1) == 0
        assert shuffle_h(1, 1) == 1
        assert shuffle_h_inverse(1, 1) == 1

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            shuffle_h(3, 0)
        with pytest.raises(ValueError):
            shuffle_h_inverse(3, -1)

    @given(WIDTHS, st.integers(min_value=0))
    def test_inverse_roundtrip(self, n, y):
        y &= (1 << n) - 1
        assert shuffle_h_inverse(shuffle_h(y, n), n) == y
        assert shuffle_h(shuffle_h_inverse(y, n), n) == y

    @given(WIDTHS)
    @settings(max_examples=12)
    def test_bijection_on_small_domains(self, n):
        n = min(n, 10)
        domain = range(1 << n)
        images = {shuffle_h(y, n) for y in domain}
        assert len(images) == 1 << n

    @given(WIDTHS, st.integers(min_value=0))
    def test_output_in_range(self, n, y):
        assert 0 <= shuffle_h(y, n) < (1 << n)
        assert 0 <= shuffle_h_inverse(y, n) < (1 << n)


class TestVectorPacking:
    def test_decompose_reassembles(self):
        v = 0b1101_0110_1011
        v3, v2, v1 = decompose(v, 4)
        assert v1 == 0b1011
        assert v2 == 0b0110
        assert v3 == 0b1101
        assert (v3 << 8) | (v2 << 4) | v1 == v

    def test_pack_vector_layout(self):
        # address bits sit above the history bits; low 2 address bits drop.
        assert pack_vector(0b1100, 0b101, 3) == (0b11 << 3) | 0b101

    def test_pack_vector_zero_history(self):
        assert pack_vector(0x400, 0b111, 0) == 0x400 >> 2

    def test_pack_vector_masks_history(self):
        assert pack_vector(0, 0b1111, 2) == 0b11

    def test_pack_vector_rejects_negative_history_bits(self):
        with pytest.raises(ValueError):
            pack_vector(0, 0, -1)


class TestSkewFamily:
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0))
    def test_functions_in_range(self, n, v):
        for f in (skew_f0, skew_f1, skew_f2):
            assert 0 <= f(v, n) < (1 << n)

    def test_functions_differ(self):
        n = 6
        family = skew_function_family(n, 3)
        vectors = range(1 << (2 * n))
        # The three functions must not be pairwise identical.
        for i in range(3):
            for j in range(i + 1, 3):
                assert any(
                    family[i](v) != family[j](v) for v in vectors
                ), f"f{i} == f{j}"

    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=0),
        st.integers(min_value=0),
    )
    @settings(max_examples=200)
    def test_dispersion_property(self, n, a, b):
        """Vectors colliding in two or more banks must have a difference
        in the family's tiny symmetric kernel.

        The f_i are GF(2)-linear, so collisions depend only on the
        difference pattern (d1, d2) of the two low substrings.  XORing
        the collision conditions pairwise shows a multi-bank collision
        forces d1 == d2 == d with H(d) ^ H^-1(d) ^ d == 0 — and then all
        three banks collide together.  That kernel is empty at most
        widths and has 3 nonzero members at n=5 and n=8 (out of 2^2n
        difference patterns); every other distinct pair collides in at
        most one bank.
        """
        mask = (1 << (2 * n)) - 1
        v, w = a & mask, b & mask
        if v == w:
            return
        family = skew_function_family(n, 3)
        if not disperses(family, v, w):
            d1 = (v ^ w) & ((1 << n) - 1)
            d2 = (v ^ w) >> n
            assert d1 == d2
            assert shuffle_h(d1, n) ^ shuffle_h_inverse(d1, n) ^ d1 == 0
            assert sum(1 for f in family if f(v) == f(w)) == 3

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1),
        st.booleans(),
    )
    @settings(max_examples=200)
    def test_single_substring_differences_never_collide(self, n, d, low):
        """Vectors differing in V1 only (or V2 only) collide in no bank:
        every collision condition reduces to a bijection (H, H^-1 or
        identity) of the nonzero difference being zero."""
        d &= (1 << n) - 1
        if d == 0:
            return
        w = d if low else (d << n)
        family = skew_function_family(n, 3)
        assert sum(1 for f in family if f(0) == f(w)) == 0

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_multi_collision_kernel_is_tiny(self, n):
        """Exhaustively: >= 2-bank collisions are confined to at most 3
        of the 2^2n - 1 nonzero difference patterns (0 at most widths),
        so the paper's 'at most one conflicting bank' reading holds for
        all but a vanishing fraction of pairs."""
        family = skew_function_family(n, 3)
        kernel = [
            d
            for d in range(1, 1 << (2 * n))
            if sum(1 for f in family if f(0) == f(d)) >= 2
        ]
        assert len(kernel) <= 3
        for d in kernel:
            assert (d & ((1 << n) - 1)) == (d >> n)

    def test_five_bank_family(self):
        family = skew_function_family(6, 5)
        assert len(family) == 5
        # All five functions produce in-range indices and are distinct.
        vectors = list(range(1 << 12))
        for f in family:
            assert all(0 <= f(v) < 64 for v in vectors[:256])
        for i in range(5):
            for j in range(i + 1, 5):
                assert any(family[i](v) != family[j](v) for v in vectors)

    def test_single_bank_family_is_truncation(self):
        (f,) = skew_function_family(4, 1)
        assert f(0b110101) == 0b0101

    def test_rejects_even_bank_count(self):
        with pytest.raises(ValueError):
            skew_function_family(6, 4)

    def test_xor_shift_family_in_range(self):
        family = xor_shift_family(6, 3)
        assert len(family) == 3
        for f in family:
            for v in range(4096):
                assert 0 <= f(v) < 64

    def test_naive_family_is_degenerate(self):
        family = naive_family(6, 3)
        for v in range(4096):
            indices = {f(v) for f in family}
            assert len(indices) == 1
