"""Property-based tests on the skewed predictor's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gskew import SkewedPredictor
from repro.core.vote import majority

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # word index
        st.booleans(),
    ),
    min_size=1,
    max_size=300,
)

policies = st.sampled_from(["total", "partial", "lazy"])


def _predictor(policy, counter_bits=2):
    return SkewedPredictor(
        bank_index_bits=5,
        history_bits=4,
        update_policy=policy,
        counter_bits=counter_bits,
    )


@given(streams, policies, st.integers(min_value=1, max_value=3))
@settings(max_examples=60, deadline=None)
def test_counters_always_in_range(stream, policy, counter_bits):
    predictor = _predictor(policy, counter_bits)
    limit = (1 << counter_bits) - 1
    for word, taken in stream:
        predictor.predict_and_update(0x400000 + word * 4, taken)
        for bank in predictor.banks:
            assert all(0 <= v <= limit for v in bank.counters.values)


@given(streams, policies)
@settings(max_examples=40, deadline=None)
def test_prediction_always_equals_bank_majority(stream, policy):
    predictor = _predictor(policy)
    for word, taken in stream:
        address = 0x400000 + word * 4
        expected = majority(predictor.bank_predictions(address))
        assert predictor.predict_and_update(address, taken) == expected


@given(streams, policies)
@settings(max_examples=30, deadline=None)
def test_history_tracks_outcomes(stream, policy):
    predictor = _predictor(policy)
    for word, taken in stream:
        predictor.predict_and_update(0x400000 + word * 4, taken)
    expected = 0
    for __, taken in stream[-4:]:
        expected = ((expected << 1) | taken) & 0xF
    if len(stream) >= 4:
        assert predictor.history.value == expected


@given(streams)
@settings(max_examples=30, deadline=None)
def test_partial_never_updates_more_than_total(stream):
    """Per step, the set of banks partial update touches is a subset of
    what total update touches (all of them) — measured as total counter
    movement."""
    total = _predictor("total")
    partial = _predictor("partial")

    def movement(predictor, address, taken):
        before = [list(bank.counters.values) for bank in predictor.banks]
        predictor.predict_and_update(address, taken)
        after = [list(bank.counters.values) for bank in predictor.banks]
        return sum(
            abs(a - b)
            for bank_before, bank_after in zip(before, after)
            for a, b in zip(bank_before, bank_after)
        )

    for word, taken in stream:
        address = 0x400000 + word * 4
        moved_partial = movement(partial, address, taken)
        moved_total = movement(total, address, taken)
        # Both predictors see the same stream but may diverge in state;
        # the invariant that always holds is the per-step bound.
        assert moved_partial <= 3
        assert moved_total <= 3


@given(streams, policies)
@settings(max_examples=20, deadline=None)
def test_reset_then_replay_is_identical(stream, policy):
    predictor = _predictor(policy)
    first = [
        predictor.predict_and_update(0x400000 + w * 4, t) for w, t in stream
    ]
    predictor.reset()
    second = [
        predictor.predict_and_update(0x400000 + w * 4, t) for w, t in stream
    ]
    assert first == second
