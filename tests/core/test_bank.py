"""Tests for the tag-less predictor bank."""

import pytest

from repro.core.bank import PredictorBank


class TestPredictorBank:
    def test_index_fn_drives_entry_selection(self):
        bank = PredictorBank(3, lambda v: v & 0b111, counter_bits=2)
        bank.train(0b101, True)
        bank.train(0b101, True)
        assert bank.predict(0b101) is True
        # A different vector mapping to the same entry shares the counter
        # (tag-less by design): this IS aliasing.
        assert bank.predict(0b1101 & 0b111 | 0b1000) is bank.predict(0b101)

    def test_training_moves_prediction(self):
        bank = PredictorBank(2, lambda v: v & 0b11)
        assert bank.predict(0) is True  # weakly-taken reset state
        bank.train(0, False)
        bank.train(0, False)
        assert bank.predict(0) is False

    def test_entries_and_storage(self):
        bank = PredictorBank(10, lambda v: v & 1023, counter_bits=2)
        assert bank.entries == 1024
        assert bank.storage_bits == 2048
        assert PredictorBank(10, lambda v: 0, counter_bits=1).storage_bits == 1024

    def test_reset(self):
        bank = PredictorBank(2, lambda v: v & 0b11)
        bank.train(1, False)
        bank.train(1, False)
        bank.reset()
        assert bank.predict(1) is True

    def test_zero_index_bits_single_entry(self):
        bank = PredictorBank(0, lambda v: 0)
        assert bank.entries == 1
        bank.train(123, False)
        bank.train(456, False)
        assert bank.predict(789) is False

    def test_rejects_negative_index_bits(self):
        with pytest.raises(ValueError):
            PredictorBank(-1, lambda v: 0)
