"""Tests for the skewed branch predictor (gskew)."""

import random

import pytest

from repro.core.gskew import SkewedPredictor
from repro.core.update import UpdatePolicy
from repro.sim.engine import simulate


def _make(banks=3, policy="partial", bank_bits=4, history=4, counter_bits=2):
    return SkewedPredictor(
        bank_index_bits=bank_bits,
        history_bits=history,
        banks=banks,
        counter_bits=counter_bits,
        update_policy=policy,
    )


class TestConstruction:
    def test_rejects_even_banks(self):
        with pytest.raises(ValueError):
            _make(banks=2)

    def test_rejects_wrong_function_count(self):
        with pytest.raises(ValueError):
            SkewedPredictor(4, 4, banks=3, functions=[lambda v: 0])

    def test_storage_accounting(self):
        predictor = _make(bank_bits=10)
        assert predictor.total_entries == 3 * 1024
        assert predictor.storage_bits == 3 * 1024 * 2

    def test_policy_parsing(self):
        assert _make(policy="total").update_policy is UpdatePolicy.TOTAL
        assert (
            _make(policy=UpdatePolicy.LAZY).update_policy is UpdatePolicy.LAZY
        )


class TestPrediction:
    def test_prediction_is_majority_of_banks(self):
        predictor = _make()
        address = 0x400100
        v = predictor.vector(address)
        # Force bank counters to 2 strong states and one opposite.
        predictor.banks[0].counters.values[predictor.banks[0].index_fn(v)] = 3
        predictor.banks[1].counters.values[predictor.banks[1].index_fn(v)] = 3
        predictor.banks[2].counters.values[predictor.banks[2].index_fn(v)] = 0
        assert predictor.predict(address) is True
        assert predictor.bank_predictions(address) == [True, True, False]

    def test_learns_deterministic_branch(self):
        predictor = _make()
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_predict_is_pure(self):
        predictor = _make()
        before = [list(bank.counters.values) for bank in predictor.banks]
        predictor.predict(0x400840)
        after = [list(bank.counters.values) for bank in predictor.banks]
        assert before == after

    def test_history_shifts_on_update_and_unconditional(self):
        predictor = _make(history=4)
        predictor.predict_and_update(0x400100, True)
        assert predictor.history.value == 0b1
        predictor.notify_unconditional(0x400200)
        assert predictor.history.value == 0b11


class TestUpdatePolicies:
    def _force_bank_states(self, predictor, address, states):
        v = predictor.vector(address)
        for bank, state in zip(predictor.banks, states):
            bank.counters.values[bank.index_fn(v)] = state
        return v

    def test_total_updates_all_banks(self):
        predictor = _make(policy="total")
        address = 0x400100
        v = self._force_bank_states(predictor, address, [3, 3, 0])
        predictor.train(address, True)
        values = [
            bank.counters.values[bank.index_fn(v)] for bank in predictor.banks
        ]
        assert values == [3, 3, 1]  # the wrong bank was trained too

    def test_partial_spares_wrong_bank_on_correct_overall(self):
        predictor = _make(policy="partial")
        address = 0x400100
        v = self._force_bank_states(predictor, address, [3, 3, 0])
        predictor.train(address, True)  # overall True == outcome
        values = [
            bank.counters.values[bank.index_fn(v)] for bank in predictor.banks
        ]
        # Banks 0/1 stay saturated, bank 2 untouched (serving another
        # substream, per section 4.1).
        assert values == [3, 3, 0]

    def test_partial_updates_all_banks_on_overall_misprediction(self):
        predictor = _make(policy="partial")
        address = 0x400100
        v = self._force_bank_states(predictor, address, [0, 0, 3])
        predictor.train(address, True)  # overall False != outcome True
        values = [
            bank.counters.values[bank.index_fn(v)] for bank in predictor.banks
        ]
        assert values == [1, 1, 3]

    def test_lazy_never_updates_on_correct_overall(self):
        predictor = _make(policy="lazy")
        address = 0x400100
        v = self._force_bank_states(predictor, address, [3, 3, 0])
        predictor.train(address, True)
        values = [
            bank.counters.values[bank.index_fn(v)] for bank in predictor.banks
        ]
        assert values == [3, 3, 0]

    def test_lazy_updates_on_misprediction(self):
        predictor = _make(policy="lazy")
        address = 0x400100
        v = self._force_bank_states(predictor, address, [0, 0, 0])
        predictor.train(address, True)
        values = [
            bank.counters.values[bank.index_fn(v)] for bank in predictor.banks
        ]
        assert values == [1, 1, 1]


class TestFusedPath:
    def test_predict_and_update_matches_train_plus_predict(self):
        """The fused fast path must be behaviourally identical to the
        generic predict/train/notify sequence."""
        rng = random.Random(11)
        fused = _make(policy="partial")
        generic = _make(policy="partial")
        for __ in range(500):
            address = 0x400000 + rng.randrange(256) * 4
            taken = rng.random() < 0.7
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            got = fused.predict_and_update(address, taken)
            assert got == expected
        for bank_f, bank_g in zip(fused.banks, generic.banks):
            assert bank_f.counters.values == bank_g.counters.values
        assert fused.history.value == generic.history.value

    @pytest.mark.parametrize("policy", ["total", "partial", "lazy"])
    def test_fused_path_all_policies(self, policy):
        rng = random.Random(13)
        fused = _make(policy=policy)
        generic = _make(policy=policy)
        for __ in range(300):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.5
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected


class TestReset:
    def test_reset_restores_power_on_state(self):
        predictor = _make()
        for __ in range(20):
            predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.history.value == 0
        assert predictor.predict(0x400100) is True  # weakly-taken reset


class TestAliasingResilience:
    def test_outvotes_single_bank_alias(self, small_trace):
        """gskew with partial update beats a 1-bank table of equal total
        size on a real aliasing-heavy trace (the paper's core claim)."""
        gskew = SkewedPredictor(
            bank_index_bits=7, history_bits=4, update_policy="partial"
        )  # 3x128 = 384 entries
        single = SkewedPredictor(
            bank_index_bits=9, history_bits=4, banks=1
        )  # 512 entries > 384
        gskew_result = simulate(gskew, small_trace)
        single_result = simulate(single, small_trace)
        assert (
            gskew_result.misprediction_ratio
            < single_result.misprediction_ratio * 1.05
        )
