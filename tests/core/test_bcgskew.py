"""Tests for the 2Bc-gskew hybrid (the EV8-style design)."""

import random

from repro.core.bcgskew import BcGskewPredictor
from repro.sim.engine import simulate


def _make(bank_bits=6, history=6):
    return BcGskewPredictor(bank_bits, history)


class TestStructure:
    def test_storage_counts_four_tables(self):
        predictor = BcGskewPredictor(10, 8)
        assert predictor.storage_bits == 4 * 1024 * 2

    def test_bim_index_ignores_history(self):
        predictor = _make()
        predictor.history.reset(0)
        __, bim_a, *_ = predictor._components(0x400100)
        predictor.history.reset(0x3F)
        __, bim_b, *_ = predictor._components(0x400100)
        assert bim_a == bim_b

    def test_skewed_banks_use_history(self):
        predictor = _make()
        predictor.history.reset(0)
        __, __, g0_a, g1_a, __ = predictor._components(0x400100)
        predictor.history.reset(0x3F)
        __, __, g0_b, g1_b, __ = predictor._components(0x400100)
        assert (g0_a, g1_a) != (g0_b, g1_b)


class TestMetaChooser:
    def test_meta_migrates_to_bimodal_for_history_free_branches(self):
        """A strongly-biased branch seen under ever-changing history is
        served by BIM; META must settle on a side that predicts it."""
        predictor = _make(bank_bits=5, history=8)
        pc = 0x400100
        for step in range(300):
            predictor.history.reset(step & 0xFF)
            predictor.train(pc, True)
        predictor.history.reset(0xAB)
        assert predictor.predict(pc) is True

    def test_meta_untouched_when_sides_agree(self):
        predictor = _make()
        meta_before = list(predictor.meta.values)
        # Fresh tables: bim and vote agree (all weakly taken).
        predictor.train(0x400100, True)
        assert predictor.meta.values == meta_before


class TestBehaviour:
    def test_learns_biased_branch(self):
        predictor = _make()
        for __ in range(10):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_learns_history_pattern(self):
        """An alternating branch needs the skewed side; the hybrid must
        reach it through META."""
        predictor = _make(bank_bits=7, history=4)
        pc = 0x400100
        misses = 0
        for step in range(400):
            taken = step % 2 == 0
            if predictor.predict_and_update(pc, taken) != taken and step > 100:
                misses += 1
        assert misses == 0

    def test_fused_path_matches_generic(self):
        rng = random.Random(41)
        fused = _make()
        generic = _make()
        for __ in range(400):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected
        assert fused.meta.values == generic.meta.values
        assert fused.bim.counters.values == generic.bim.counters.values

    def test_beats_gshare_at_equal_storage(self, small_trace):
        from repro.sim.config import make_predictor

        bcgskew = simulate(make_predictor("2bcgskew:256:h8"), small_trace)
        gshare = simulate(make_predictor("gshare:1k:h8"), small_trace)
        assert bcgskew.storage_bits == gshare.storage_bits
        assert (
            bcgskew.misprediction_ratio <= gshare.misprediction_ratio * 1.05
        )

    def test_reset(self):
        predictor = _make()
        for __ in range(20):
            predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.predict(0x400100) is True
        assert predictor.history.value == 0
