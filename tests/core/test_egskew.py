"""Tests for the enhanced skewed predictor (e-gskew)."""

import pytest

from repro.core.egskew import EnhancedSkewedPredictor
from repro.core.gskew import SkewedPredictor
from repro.core.skew import pack_vector, skew_f1, skew_f2


def _make(bank_bits=6, history=8, bank0_history_bits=0):
    return EnhancedSkewedPredictor(
        bank_index_bits=bank_bits,
        history_bits=history,
        bank0_history_bits=bank0_history_bits,
    )


class TestBankZeroIndexing:
    def test_bank0_is_address_truncation(self):
        predictor = _make(bank_bits=6, history=8)
        for address in (0x400000, 0x400004, 0x4001FC, 0x7FFFFC):
            for history in (0, 0xAB, 0xFF):
                predictor.history.reset(history)
                v = predictor.vector(address)
                expected = (address >> 2) & 0x3F
                assert predictor.banks[0].index_fn(v) == expected

    def test_bank0_ignores_history(self):
        predictor = _make()
        address = 0x400100
        predictor.history.reset(0)
        index_a = predictor.banks[0].index_fn(predictor.vector(address))
        predictor.history.reset(0xFF)
        index_b = predictor.banks[0].index_fn(predictor.vector(address))
        assert index_a == index_b

    def test_banks_1_2_use_paper_functions(self):
        predictor = _make(bank_bits=6, history=8)
        predictor.history.reset(0x5A)
        v = pack_vector(0x400100, 0x5A, 8)
        assert predictor.banks[1].index_fn(v) == skew_f1(v, 6)
        assert predictor.banks[2].index_fn(v) == skew_f2(v, 6)

    def test_bank0_history_knob(self):
        """bank0_history_bits > 0 makes bank 0 history-sensitive again."""
        predictor = _make(bank0_history_bits=4)
        address = 0x400100
        predictor.history.reset(0b0000)
        index_a = predictor.banks[0].index_fn(predictor.vector(address))
        predictor.history.reset(0b1111)
        index_b = predictor.banks[0].index_fn(predictor.vector(address))
        assert index_a != index_b

    def test_rejects_bank0_bits_above_history(self):
        with pytest.raises(ValueError):
            _make(history=4, bank0_history_bits=6)


class TestBehaviour:
    def test_zero_history_degenerates_to_gskew_like(self):
        """With no history at all, e-gskew and gskew predict from the
        same information (address only)."""
        egskew = EnhancedSkewedPredictor(bank_index_bits=5, history_bits=0)
        gskew = SkewedPredictor(bank_index_bits=5, history_bits=0)
        # Same vector space; both should learn a deterministic branch.
        for __ in range(6):
            egskew.predict_and_update(0x400040, False)
            gskew.predict_and_update(0x400040, False)
        assert egskew.predict(0x400040) is False
        assert gskew.predict(0x400040) is False

    def test_learns_history_free_branch_under_history_pressure(self):
        """Bank 0 keeps predicting a strongly-biased branch even when
        the history context never repeats (the e-gskew rationale)."""
        predictor = _make(bank_bits=6, history=8)
        address = 0x400100
        # Feed the branch under 200 distinct history contexts.
        for step in range(200):
            predictor.history.reset(step & 0xFF)
            predictor.train(address, True)
        predictor.history.reset(0xEE)  # yet another unseen context
        assert predictor.predict(address) is True

    def test_storage_matches_gskew(self):
        assert (
            _make(bank_bits=8).storage_bits
            == SkewedPredictor(8, 8).storage_bits
        )

    def test_name(self):
        assert _make().name == "egskew"
