"""Tests for majority voting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.vote import majority, majority3


class TestMajority:
    def test_three_way(self):
        assert majority([True, True, False]) is True
        assert majority([False, True, False]) is False
        assert majority([True, True, True]) is True

    def test_single_vote(self):
        assert majority([True]) is True
        assert majority([False]) is False

    def test_five_way(self):
        assert majority([True, False, True, False, True]) is True
        assert majority([True, False, False, False, True]) is False

    def test_rejects_even_counts(self):
        with pytest.raises(ValueError):
            majority([True, False])
        with pytest.raises(ValueError):
            majority([])

    @given(st.lists(st.booleans(), min_size=1, max_size=9).filter(
        lambda votes: len(votes) % 2 == 1
    ))
    def test_matches_counting(self, votes):
        assert majority(votes) == (sum(votes) > len(votes) // 2)

    @given(st.booleans(), st.booleans(), st.booleans())
    def test_majority3_matches_general(self, a, b, c):
        assert majority3(a, b, c) == majority([a, b, c])

    @given(st.lists(st.booleans(), min_size=3, max_size=9).filter(
        lambda votes: len(votes) % 2 == 1
    ))
    def test_invariant_under_negation(self, votes):
        """Majority of negations is negation of majority (odd counts)."""
        assert majority([not v for v in votes]) == (not majority(votes))
