"""Tests for global and per-address history registers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.history import GlobalHistory, PerAddressHistory


class TestGlobalHistory:
    def test_push_shifts_lsb_first(self):
        h = GlobalHistory(4)
        for taken in (True, False, True, True):
            h.push(taken)
        assert h.value == 0b1011

    def test_wraps_at_width(self):
        h = GlobalHistory(2)
        for taken in (True, True, False, True):
            h.push(taken)
        assert h.value == 0b01

    def test_zero_width_is_inert(self):
        h = GlobalHistory(0)
        h.push(True)
        assert h.value == 0
        assert int(h) == 0

    def test_reset(self):
        h = GlobalHistory(4)
        h.push(True)
        h.reset()
        assert h.value == 0
        h.reset(0b1111)
        assert h.value == 0b1111

    def test_initial_value_masked(self):
        assert GlobalHistory(2, value=0b111).value == 0b11

    def test_rejects_negative_width(self):
        with pytest.raises(ValueError):
            GlobalHistory(-1)

    @given(st.integers(min_value=1, max_value=16), st.lists(st.booleans()))
    def test_value_always_masked(self, bits, outcomes):
        h = GlobalHistory(bits)
        for taken in outcomes:
            h.push(taken)
        assert 0 <= h.value < (1 << bits)

    @given(st.lists(st.booleans(), min_size=5, max_size=20))
    def test_value_encodes_last_k_outcomes(self, outcomes):
        k = 5
        h = GlobalHistory(k)
        for taken in outcomes:
            h.push(taken)
        expected = 0
        for taken in outcomes[-k:]:
            expected = ((expected << 1) | taken) & ((1 << k) - 1)
        assert h.value == expected


class TestPerAddressHistory:
    def test_separate_registers_per_address(self):
        table = PerAddressHistory(index_bits=4, bits=3)
        table.push(0x100, True)
        table.push(0x104, False)
        assert table.read(0x100) == 0b1
        assert table.read(0x104) == 0b0
        table.push(0x100, True)
        assert table.read(0x100) == 0b11

    def test_aliased_addresses_share_register(self):
        table = PerAddressHistory(index_bits=2, bits=4)
        # Addresses 16 words apart alias in a 4-entry table.
        table.push(0x0, True)
        assert table.read(0x0 + (4 << 2)) == 1

    def test_zero_bits_is_inert(self):
        table = PerAddressHistory(index_bits=2, bits=0)
        table.push(0, True)
        assert table.read(0) == 0

    def test_reset(self):
        table = PerAddressHistory(index_bits=2, bits=4)
        table.push(0, True)
        table.reset()
        assert table.read(0) == 0

    def test_rejects_negative_widths(self):
        with pytest.raises(ValueError):
            PerAddressHistory(-1, 2)
        with pytest.raises(ValueError):
            PerAddressHistory(2, -1)
