"""Tests for the shared-hysteresis (distributed-encoding) skewed predictor."""

import random

import pytest

from repro.core.gskew import SkewedPredictor
from repro.core.shared_hysteresis import SharedHysteresisSkewedPredictor
from repro.sim.engine import simulate


def _make(bank_bits=6, history=4, sharing=1, policy="partial"):
    return SharedHysteresisSkewedPredictor(
        bank_bits, history, sharing=sharing, update_policy=policy
    )


class TestSplitCounter:
    def test_step_matches_two_bit_counter(self):
        """(direction, hysteresis) must walk the 2-bit counter lattice."""
        from repro.core.counters import SaturatingCounter

        rng = random.Random(3)
        d, h = 1, 0  # value 2 = weakly taken
        counter = SaturatingCounter(bits=2, value=2)
        for __ in range(200):
            taken = rng.random() < 0.5
            d, h = SharedHysteresisSkewedPredictor._step(d, h, taken)
            counter.update(taken)
            assert 2 * d + h == counter.value


class TestStorage:
    def test_two_way_sharing(self):
        predictor = _make(bank_bits=10, sharing=1)
        assert predictor.storage_bits == 3 * (1024 + 512)

    def test_four_way_sharing(self):
        predictor = _make(bank_bits=10, sharing=2)
        assert predictor.storage_bits == 3 * (1024 + 256)

    def test_private_hysteresis_equals_two_bit_cost(self):
        predictor = _make(bank_bits=10, sharing=0)
        reference = SkewedPredictor(10, 4, counter_bits=2)
        assert predictor.storage_bits == reference.storage_bits

    def test_rejects_bad_sharing(self):
        with pytest.raises(ValueError):
            _make(bank_bits=4, sharing=5)
        with pytest.raises(ValueError):
            _make(sharing=-1)


class TestEquivalence:
    def test_private_hysteresis_matches_plain_gskew(self):
        """With sharing=0 the split encoding IS a 2-bit counter, so the
        predictor must behave identically to the standard gskew."""
        rng = random.Random(7)
        split = _make(bank_bits=6, history=4, sharing=0)
        plain = SkewedPredictor(6, 4, counter_bits=2, update_policy="partial")
        for __ in range(800):
            address = 0x400000 + rng.randrange(128) * 4
            taken = rng.random() < 0.7
            assert split.predict_and_update(
                address, taken
            ) == plain.predict_and_update(address, taken)

    def test_fused_path_matches_generic(self):
        rng = random.Random(9)
        fused = _make()
        generic = _make()
        for __ in range(400):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected
        assert fused.directions == generic.directions
        assert fused.hysteresis == generic.hysteresis


class TestBehaviour:
    def test_learns_biased_branch(self):
        predictor = _make()
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_sharing_costs_little_accuracy(self, small_trace):
        shared = simulate(_make(bank_bits=8, sharing=1), small_trace)
        plain = simulate(
            SkewedPredictor(8, 4, update_policy="partial"), small_trace
        )
        assert shared.storage_bits < plain.storage_bits
        assert (
            shared.misprediction_ratio <= plain.misprediction_ratio * 1.20
        )

    def test_policies(self, tiny_trace):
        for policy in ("total", "partial", "lazy"):
            result = simulate(_make(policy=policy), tiny_trace)
            assert 0.0 < result.misprediction_ratio < 0.5

    def test_reset(self):
        predictor = _make()
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.predict(0x400100) is True
        assert predictor.history.value == 0
