"""Unit tests for the ``REPRO_FAULTS`` plan grammar and site checks."""

from __future__ import annotations

import pickle

import pytest

from repro.resilience.faults import (
    FAULTS_ENV_VAR,
    SITES,
    FaultPlan,
    InjectedFault,
    active_plan,
    fault_active,
    maybe_fail,
    reset_faults,
)


class TestParse:
    def test_empty_text_is_empty_plan(self):
        for text in ("", "  ", ",", " , "):
            plan = FaultPlan.parse(text)
            assert plan.empty
            assert not plan.should_fire("worker-crash")

    def test_single_arrival_fires_exactly_once(self):
        plan = FaultPlan.parse("worker-crash@2")
        fired = [plan.should_fire("worker-crash") for _ in range(4)]
        assert fired == [False, True, False, False]

    def test_closed_range_is_inclusive(self):
        plan = FaultPlan.parse("cache-read@2-3")
        fired = [plan.should_fire("cache-read") for _ in range(4)]
        assert fired == [False, True, True, False]

    def test_open_range_fires_forever(self):
        plan = FaultPlan.parse("worker-crash@3-")
        fired = [plan.should_fire("worker-crash") for _ in range(5)]
        assert fired == [False, False, True, True, True]

    def test_star_fires_on_every_arrival(self):
        plan = FaultPlan.parse("kernel-scan@*")
        assert all(plan.should_fire("kernel-scan") for _ in range(3))

    def test_sites_count_independently(self):
        plan = FaultPlan.parse("kernel-scan@1,cache-read@2")
        assert plan.should_fire("kernel-scan")
        # cache-read has seen zero arrivals; its window is still ahead.
        assert not plan.should_fire("cache-read")
        assert plan.should_fire("cache-read")

    def test_repeated_site_clauses_union(self):
        plan = FaultPlan.parse("worker-crash@1,worker-crash@3")
        fired = [plan.should_fire("worker-crash") for _ in range(4)]
        assert fired == [True, False, True, False]

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" worker-crash @ 1 , cache-read@ 2-3 ")
        assert plan.should_fire("worker-crash")

    def test_unknown_site_rejected_with_known_list(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("warp-core@1")
        with pytest.raises(ValueError, match="worker-crash"):
            FaultPlan.parse("warp-core@1")

    @pytest.mark.parametrize(
        "text",
        ["worker-crash", "worker-crash@0", "worker-crash@3-2",
         "worker-crash@x", "worker-crash@1-x"],
    )
    def test_malformed_clauses_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.parse(text)

    def test_should_fire_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.parse("").should_fire("warp-core")


class TestArrivalCounters:
    def test_arrivals_visible_for_planned_sites(self):
        plan = FaultPlan.parse("cache-read@5")
        assert plan.arrivals("cache-read") == 0
        for _ in range(3):
            plan.should_fire("cache-read")
        assert plan.arrivals("cache-read") == 3

    def test_unplanned_sites_are_not_counted(self):
        # The no-window early-out keeps unplanned sites free; they never
        # accumulate arrivals.
        plan = FaultPlan.parse("cache-read@1")
        plan.should_fire("worker-crash")
        assert plan.arrivals("worker-crash") == 0


class TestEnvironmentPlumbing:
    def test_unset_env_means_no_faults(self):
        assert active_plan().empty
        assert not fault_active("worker-crash")
        maybe_fail("worker-crash")  # must not raise

    def test_env_change_reparses_with_fresh_counters(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache-read@1")
        assert fault_active("cache-read")
        assert not fault_active("cache-read")
        # Same value: cached plan, counters keep advancing.
        assert not fault_active("cache-read")
        # New value: fresh plan, arrival counter restarts at zero.
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache-read@1,kernel-scan@1")
        assert fault_active("cache-read")

    def test_reset_faults_restarts_counters(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache-read@1")
        assert fault_active("cache-read")
        assert not fault_active("cache-read")
        reset_faults()
        assert fault_active("cache-read")

    def test_maybe_fail_raises_with_site(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "kernel-scan@1")
        reset_faults()
        with pytest.raises(InjectedFault) as excinfo:
            maybe_fail("kernel-scan")
        assert excinfo.value.site == "kernel-scan"

    def test_bad_plan_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "not-a-site@1")
        reset_faults()
        with pytest.raises(ValueError, match="unknown fault site"):
            fault_active("worker-crash")


class TestInjectedFault:
    def test_survives_pickling(self):
        # Worker faults cross a process boundary inside the pool's
        # result pickle; the exception must round-trip intact.
        fault = pickle.loads(pickle.dumps(InjectedFault("worker-crash")))
        assert isinstance(fault, InjectedFault)
        assert fault.site == "worker-crash"

    def test_every_documented_site_exists(self):
        assert SITES == {
            "worker-crash",
            "worker-hang",
            "cache-read",
            "cache-write",
            "kernel-native",
            "kernel-scan",
            "kernel-vectorized",
            "kernel-scan-grid",
            "serving-shard",
        }
