"""End-to-end recovery: every fault class heals with identical results.

The acceptance bar for the resilience layer is *byte-identity*: a run
that hit injected worker crashes, hangs or kernel failures must produce
exactly the results of a fault-free run, with the recovery visible only
in warnings and counters.  These tests inject each fault class through
``REPRO_FAULTS`` and compare against clean baselines.
"""

from __future__ import annotations

import warnings

import pytest

from repro.resilience.faults import InjectedFault, reset_faults
from repro.serving.shard import Shard
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.native import native_available
from repro.sim.parallel import run_cells, recovery_stats
from repro.sim.state import PredictorState
from repro.sim.vectorized import _snapshot_state, simulate_fast

#: One spec per dispatch tier: native/scan-expressible, vectorized-only
#: (multi-bank LAZY is the one coupled policy with no scan path; PARTIAL
#: scans now), and generic-only (per-address history).
SCAN_SPEC = "gshare:512:h8"
VECTOR_SPEC = "gskew:3x64:h4:lazy"
GENERIC_SPEC = "fa:16:h3"

SWEEP_SPECS = [SCAN_SPEC, VECTOR_SPEC, GENERIC_SPEC, "bimodal:256"]


def _clean_fast(spec, trace):
    """A fault-free ``simulate_fast`` baseline (result, final state)."""
    predictor = make_predictor(spec)
    result = simulate_fast(predictor, trace, label=spec)
    return result, _snapshot_state(predictor)


class TestKernelDegradation:
    def test_native_failure_degrades_bit_identically(
        self, fault_env, tiny_trace
    ):
        if not native_available():
            pytest.skip("native backend unavailable; tier not in the ladder")
        expected, expected_state = _clean_fast(SCAN_SPEC, tiny_trace)
        fault_env("kernel-native@1")
        predictor = make_predictor(SCAN_SPEC)
        with pytest.warns(RuntimeWarning, match="native engine failed"):
            degraded = simulate_fast(predictor, tiny_trace, label=SCAN_SPEC)
        assert degraded == expected
        assert degraded.engine == "scan"  # one-level degradation
        assert _snapshot_state(predictor) == expected_state

    def test_scan_failure_degrades_bit_identically(
        self, fault_env, tiny_trace, monkeypatch
    ):
        # Pin the scan tier to the front of the ladder (the native tier
        # would otherwise absorb this spec and never dispatch scan).
        monkeypatch.setenv("REPRO_NATIVE", "0")
        expected, expected_state = _clean_fast(SCAN_SPEC, tiny_trace)
        fault_env("kernel-scan@1")
        predictor = make_predictor(SCAN_SPEC)
        with pytest.warns(RuntimeWarning, match="scan engine failed"):
            degraded = simulate_fast(predictor, tiny_trace, label=SCAN_SPEC)
        assert degraded == expected
        # The failed tier's partial work was rolled back: the surviving
        # tier left the same final counters and history as a clean run.
        assert _snapshot_state(predictor) == expected_state

    def test_vectorized_failure_degrades_bit_identically(
        self, fault_env, tiny_trace
    ):
        expected, expected_state = _clean_fast(VECTOR_SPEC, tiny_trace)
        fault_env("kernel-vectorized@1")
        predictor = make_predictor(VECTOR_SPEC)
        with pytest.warns(RuntimeWarning, match="vectorized engine failed"):
            degraded = simulate_fast(predictor, tiny_trace, label=VECTOR_SPEC)
        assert degraded == expected
        assert _snapshot_state(predictor) == expected_state

    def test_all_fast_tiers_failing_reaches_the_generic_engine(
        self, fault_env, tiny_trace
    ):
        reference = simulate(
            make_predictor(SCAN_SPEC), tiny_trace, label=SCAN_SPEC
        )
        fault_env("kernel-native@1,kernel-scan@1,kernel-vectorized@1")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = simulate_fast(
                make_predictor(SCAN_SPEC), tiny_trace, label=SCAN_SPEC
            )
        assert degraded == reference
        assert degraded.engine == "generic"
        messages = [str(w.message) for w in caught]
        assert any("scan engine failed" in m for m in messages)
        assert any("vectorized engine failed" in m for m in messages)
        if native_available():
            assert any("native engine failed" in m for m in messages)

    def test_fault_consumed_then_clean(
        self, fault_env, tiny_trace, monkeypatch
    ):
        """A one-arrival window fires once; the next call is fault-free."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        expected, _ = _clean_fast(SCAN_SPEC, tiny_trace)
        fault_env("kernel-scan@1")
        with pytest.warns(RuntimeWarning):
            simulate_fast(
                make_predictor(SCAN_SPEC), tiny_trace, label=SCAN_SPEC
            )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean = simulate_fast(
                make_predictor(SCAN_SPEC), tiny_trace, label=SCAN_SPEC
            )
        assert clean == expected


class TestServingShardRecovery:
    """The ``serving-shard`` site: crash-mid-batch, rollback, replay."""

    SPEC = "gshare:128:h6"

    def _feed(self, shard, session, trace):
        for i in range(len(trace)):
            if shard.push(
                session,
                int(trace.pcs[i]),
                bool(trace.takens[i]),
                bool(trace.conditionals[i]),
            ):
                shard.flush(session)
        shard.flush(session)

    def _clean_serial(self, trace):
        predictor = make_predictor(self.SPEC)
        result = simulate_fast(predictor, trace, label=self.SPEC)
        return result, PredictorState.capture(predictor).digest()

    def test_crash_mid_batch_replays_byte_identically(
        self, fault_env, tiny_trace
    ):
        """One crash after the engine ran but before commit: the batch is
        rolled back to its pre-batch snapshot and replayed, and the whole
        stream still matches a fault-free serial run exactly."""
        expected, expected_digest = self._clean_serial(tiny_trace)
        fault_env("serving-shard@2")  # second flush dies mid-batch
        shard = Shard(0, batch_size=37)
        tenant = shard.open("s", self.SPEC)
        self._feed(shard, "s", tiny_trace)
        assert shard.replays == 1
        assert tenant.conditional_branches == expected.conditional_branches
        assert tenant.mispredictions == expected.mispredictions
        assert tenant.pending == 0
        assert (
            PredictorState.capture(tenant.predictor).digest()
            == expected_digest
        )

    def test_exhausted_retries_requeue_and_raise(self, fault_env, tiny_trace):
        """A persistently-dying shard surfaces the fault — with the batch
        back in the pending buffer and the predictor rolled back, so no
        event is lost and no partial batch is committed."""
        expected, expected_digest = self._clean_serial(tiny_trace)
        fault_env("serving-shard@1-")  # every flush arrival fails
        shard = Shard(0, batch_size=16)
        tenant = shard.open("s", self.SPEC)
        pre_digest = PredictorState.capture(tenant.predictor).digest()
        with pytest.raises(InjectedFault):
            self._feed(shard, "s", tiny_trace)
        assert tenant.pending == 16  # the whole batch, requeued in order
        assert tenant.conditional_branches == 0
        assert (
            PredictorState.capture(tenant.predictor).digest() == pre_digest
        )

        # Once the fault clears, the requeued stream drains to the exact
        # fault-free totals: crash recovery changed nothing observable.
        fault_env("")
        reset_faults()
        offset = tenant.events
        for i in range(offset, len(tiny_trace)):
            if shard.push(
                "s",
                int(tiny_trace.pcs[i]),
                bool(tiny_trace.takens[i]),
                bool(tiny_trace.conditionals[i]),
            ):
                shard.flush("s")
        shard.flush("s")
        assert tenant.conditional_branches == expected.conditional_branches
        assert tenant.mispredictions == expected.mispredictions
        assert (
            PredictorState.capture(tenant.predictor).digest()
            == expected_digest
        )

    def test_replay_counter_visible_in_ring_stats(self, fault_env):
        from repro.serving.server import PredictionService

        fault_env("serving-shard@1")
        service = PredictionService(shards=1, batch_size=4)
        service.handle({"op": "open", "session": "s", "spec": "bimodal:64"})
        service.handle(
            {
                "op": "events",
                "session": "s",
                "events": [[4 * i, i % 2] for i in range(4)],
            }
        )
        stats = service.handle({"op": "stats"})
        assert stats["ok"]
        assert stats["replays"] == 1
        assert stats["flushes"] == 1


@pytest.mark.slow
class TestWorkerRecovery:
    """Pool-level faults; each grid must match the serial baseline."""

    def _cells(self):
        return [(0, spec) for spec in SWEEP_SPECS]

    def _serial(self, trace):
        return run_cells([trace], self._cells(), 1)

    def test_crashed_chunk_is_retried(self, fault_env, tiny_trace):
        expected = self._serial(tiny_trace)
        fault_env("worker-crash@1")
        results = run_cells([tiny_trace], self._cells(), 2)
        assert results == expected
        stats = recovery_stats()
        assert stats["retries"] >= 1
        assert stats["timeouts"] == 0
        assert stats["serial_cells"] == 0

    def test_persistent_crashes_fall_back_to_serial(
        self, fault_env, tiny_trace
    ):
        expected = self._serial(tiny_trace)
        fault_env("worker-crash@1-")
        with pytest.warns(RuntimeWarning, match="computing .* serially"):
            results = run_cells([tiny_trace], self._cells(), 2)
        assert results == expected
        stats = recovery_stats()
        # Every chunk exhausted its retries, then ran in the parent.
        assert stats["serial_cells"] == len(self._cells())
        assert stats["retries"] > 0

    def test_hung_worker_times_out_and_finishes_serially(
        self, fault_env, monkeypatch, tiny_trace
    ):
        expected = self._serial(tiny_trace)
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "1")
        fault_env("worker-hang@1")
        with pytest.warns(RuntimeWarning, match="timeout"):
            results = run_cells([tiny_trace], self._cells(), 2)
        assert results == expected
        stats = recovery_stats()
        assert stats["timeouts"] == 1
        assert stats["serial_cells"] == len(self._cells())
