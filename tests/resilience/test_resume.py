"""Checkpoint/resume: interrupted batch runs finish byte-identically.

Both experiment drivers — ``repro-experiments`` (the runner CLI) and
``tools/run_full_experiments.py`` — snapshot finished experiments and
serve them on ``--resume``.  Because experiments are deterministic, a
run that was killed halfway and resumed must emit exactly the reports
and summary of an uninterrupted run, recomputing only what never
finished.  ``figure3``/``figure4`` are used throughout: they are the
cheapest experiments (no scale parameter, sub-second).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import runner

EXPERIMENTS = ["figure3", "figure4"]

_TOOL_PATH = (
    Path(__file__).resolve().parents[2] / "tools" / "run_full_experiments.py"
)


@pytest.fixture(scope="module")
def tool():
    spec = importlib.util.spec_from_file_location(
        "run_full_experiments", _TOOL_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRunnerResume:
    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["figure3", "--resume"])
        assert excinfo.value.code == 2

    def test_interrupted_run_resumes_byte_identically(self, tmp_path, capsys):
        fresh_dir = tmp_path / "fresh"
        resumed_dir = tmp_path / "resumed"

        assert runner.main(
            EXPERIMENTS + ["--checkpoint-dir", str(fresh_dir)]
        ) == 0
        capsys.readouterr()

        # "Interrupted" run: only the first experiment finished.
        assert runner.main(
            ["figure3", "--checkpoint-dir", str(resumed_dir)]
        ) == 0
        capsys.readouterr()

        assert runner.main(
            EXPERIMENTS + ["--checkpoint-dir", str(resumed_dir), "--resume"]
        ) == 0
        out = capsys.readouterr().out
        assert "=== figure3 (from checkpoint) ===" in out
        assert "=== figure4 ===" in out  # recomputed, not served

        for name in EXPERIMENTS:
            fresh = (fresh_dir / f"{name}.json").read_bytes()
            resumed = (resumed_dir / f"{name}.json").read_bytes()
            assert fresh == resumed

    def test_resume_at_other_settings_recomputes(self, tmp_path, capsys):
        directory = tmp_path / "ckpt"
        assert runner.main(
            ["figure3", "--checkpoint-dir", str(directory)]
        ) == 0
        capsys.readouterr()
        # Same experiment, different scale: the snapshot must not be
        # served even though figure3 happens to ignore scale.
        assert runner.main(
            ["figure3", "--checkpoint-dir", str(directory),
             "--resume", "--scale", "0.5"]
        ) == 0
        assert "from checkpoint" not in capsys.readouterr().out


class TestToolResume:
    def _run(self, tool, out, names, resume=False):
        argv = ["--out", str(out)] + (["--resume"] if resume else []) + names
        assert tool.main(argv) == 0

    def test_interrupted_run_resumes_byte_identically(
        self, tool, tmp_path, capsys
    ):
        fresh = tmp_path / "fresh"
        resumed = tmp_path / "resumed"

        self._run(tool, fresh, EXPERIMENTS)
        capsys.readouterr()

        self._run(tool, resumed, ["figure3"])
        capsys.readouterr()
        self._run(tool, resumed, EXPERIMENTS, resume=True)
        out = capsys.readouterr().out
        assert "figure3: from checkpoint" in out
        assert "figure4: from checkpoint" not in out

        assert (
            (fresh / "summary.txt").read_bytes()
            == (resumed / "summary.txt").read_bytes()
        )
        for name in EXPERIMENTS:
            assert (
                (fresh / f"{name}.txt").read_bytes()
                == (resumed / f"{name}.txt").read_bytes()
            )

    def test_corrupt_checkpoint_recomputes_identically(
        self, tool, tmp_path, capsys
    ):
        out = tmp_path / "run"
        self._run(tool, out, EXPERIMENTS)
        baseline = (out / "summary.txt").read_bytes()

        snapshot = out / ".checkpoints" / "figure3.json"
        snapshot.write_text(snapshot.read_text()[:40])
        capsys.readouterr()
        self._run(tool, out, EXPERIMENTS, resume=True)
        console = capsys.readouterr().out
        # figure3's snapshot was refused and the experiment recomputed;
        # figure4's intact snapshot was served.
        assert "figure3: from checkpoint" not in console
        assert "figure4: from checkpoint" in console
        assert (out / "summary.txt").read_bytes() == baseline
        # The recomputed experiment re-published a servable snapshot.
        payload = json.loads(snapshot.read_text())
        assert payload["name"] == "figure3"
