"""Unit tests for the per-experiment checkpoint store."""

from __future__ import annotations

import json

import pytest

from repro.resilience.checkpoint import CheckpointStore


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path, meta={"scale": 0.5})


class TestRoundTrip:
    def test_store_then_load(self, store):
        store.store("figure5", {"report": "table\nrows"})
        assert store.load("figure5") == {"report": "table\nrows"}
        assert store.errors == 0

    def test_missing_entry_is_none(self, store):
        assert store.load("figure5") is None
        assert store.errors == 0

    def test_snapshot_is_valid_sorted_json(self, store):
        store.store("figure5", {"report": "r"})
        payload = json.loads(store.path("figure5").read_text())
        assert payload == {
            "version": 1,
            "name": "figure5",
            "meta": {"scale": 0.5},
            "result": {"report": "r"},
        }

    def test_store_overwrites(self, store):
        store.store("figure5", {"report": "old"})
        store.store("figure5", {"report": "new"})
        assert store.load("figure5") == {"report": "new"}

    def test_unsafe_names_map_to_safe_paths(self, store):
        store.store("skew/functions:v2", {"report": "r"})
        path = store.path("skew/functions:v2")
        assert path.parent == store.directory
        assert store.load("skew/functions:v2") == {"report": "r"}

    def test_no_temp_files_left_behind(self, store):
        store.store("figure5", {"report": "r"})
        assert [p.name for p in store.directory.iterdir()] == ["figure5.json"]


class TestRefusal:
    """Everything ``load`` must refuse to serve (returning ``None``)."""

    def test_corrupt_json_counted_and_unlinked(self, store):
        store.store("figure5", {"report": "r"})
        path = store.path("figure5")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert store.load("figure5") is None
        assert store.errors == 1
        assert not path.exists()

    def test_non_object_payload_refused(self, store):
        store.path("figure5").parent.mkdir(parents=True, exist_ok=True)
        store.path("figure5").write_text('["not", "an", "object"]')
        assert store.load("figure5") is None
        assert store.errors == 1

    def test_non_object_result_refused(self, store):
        store.path("figure5").parent.mkdir(parents=True, exist_ok=True)
        store.path("figure5").write_text(
            json.dumps({"version": 1, "name": "figure5",
                        "meta": {"scale": 0.5}, "result": "oops"})
        )
        assert store.load("figure5") is None
        assert store.errors == 1

    def test_meta_mismatch_forces_recompute(self, store, tmp_path):
        store.store("figure5", {"report": "scale-0.5 numbers"})
        other = CheckpointStore(tmp_path, meta={"scale": 1.0})
        assert other.load("figure5") is None
        # A mismatch is not corruption: the entry stays for the run that
        # owns it, and no error is counted.
        assert other.errors == 0
        assert store.load("figure5") is not None

    def test_version_mismatch_forces_recompute(self, store):
        store.store("figure5", {"report": "r"})
        path = store.path("figure5")
        payload = json.loads(path.read_text())
        payload["version"] = 99
        path.write_text(json.dumps(payload))
        assert store.load("figure5") is None

    def test_renamed_entry_refused(self, store):
        store.store("figure5", {"report": "r"})
        store.path("figure5").rename(store.path("figure6"))
        assert store.load("figure6") is None


class TestCompleted:
    def test_lists_only_servable_entries_sorted(self, store):
        store.store("figure9", {"report": "r9"})
        store.store("figure3", {"report": "r3"})
        store.store("figure5", {"report": "r5"})
        store.path("figure5").write_text("{corrupt")
        assert store.completed() == ["figure3", "figure9"]

    def test_empty_without_directory(self, tmp_path):
        assert CheckpointStore(tmp_path / "never-created").completed() == []
