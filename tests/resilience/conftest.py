"""Fixtures for the fault-injection suites.

Fault plans are process-global (parsed from ``REPRO_FAULTS`` with
per-site arrival counters), so every test here starts and ends with a
clean slate — otherwise one test's consumed arrivals would silently
shift the next test's windows.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FAULTS_ENV_VAR, reset_faults
from repro.sim.parallel import reset_recovery_stats


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    reset_faults()
    reset_recovery_stats()
    yield
    reset_faults()
    reset_recovery_stats()


@pytest.fixture()
def fault_env(monkeypatch):
    """Set a fault plan and reset its arrival counters."""

    def activate(plan: str) -> None:
        monkeypatch.setenv(FAULTS_ENV_VAR, plan)
        reset_faults()

    return activate
