"""Tests for the Figure 11 extrapolation machinery."""

import pytest

from repro.aliasing.three_cs import pair_stream
from repro.model.analytical import aliasing_probability, p_sk
from repro.model.extrapolation import collect_distances, extrapolate_gskew
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.traces.stats import bias_density


class TestCollectDistances:
    def test_one_entry_per_conditional(self, tiny_trace):
        distances = collect_distances(tiny_trace, 4)
        assert len(distances) == tiny_trace.conditional_count

    def test_first_encounters_are_none(self, tiny_trace):
        distances = collect_distances(tiny_trace, 4)
        pairs = list(pair_stream(tiny_trace, 4))
        seen = set()
        for pair, distance in zip(pairs, distances):
            if pair not in seen:
                assert distance is None
                seen.add(pair)
            else:
                assert distance is not None


class TestExtrapolation:
    def test_vectorised_matches_scalar_formula(self, tiny_trace):
        """The numpy fast path must agree with per-reference formula
        application."""
        distances = collect_distances(tiny_trace, 4)
        bias = bias_density(tiny_trace, 4)["static_taken_bias"]
        result = extrapolate_gskew(
            tiny_trace, 4, bank_entries=256, distances=distances, bias=bias
        )
        expected = sum(
            p_sk(aliasing_probability(d, 256), bias) for d in distances
        ) / len(distances)
        assert result.aliasing_overhead == pytest.approx(expected, rel=1e-9)

    def test_monotone_in_bank_size(self, tiny_trace):
        distances = collect_distances(tiny_trace, 4)
        overheads = [
            extrapolate_gskew(
                tiny_trace, 4, bank_entries=n, distances=distances
            ).aliasing_overhead
            for n in (32, 128, 512, 4096)
        ]
        assert overheads == sorted(overheads, reverse=True)

    def test_total_includes_unaliased_rate(self, tiny_trace):
        result = extrapolate_gskew(
            tiny_trace, 4, bank_entries=128, unaliased_rate=0.05
        )
        assert result.misprediction_rate == pytest.approx(
            result.aliasing_overhead + 0.05
        )

    def test_multibank_path(self, tiny_trace):
        distances = collect_distances(tiny_trace, 4)
        five = extrapolate_gskew(
            tiny_trace, 4, bank_entries=256, banks=5, distances=distances
        )
        three = extrapolate_gskew(
            tiny_trace, 4, bank_entries=256, banks=3, distances=distances
        )
        # More banks, same bank size: lower destructive overhead.
        assert five.aliasing_overhead <= three.aliasing_overhead

    def test_overestimates_measured_gskew(self, small_trace):
        """The paper: 'our model always slightly overestimates the
        misprediction rate' (it ignores constructive aliasing)."""
        from repro.predictors.unaliased import UnaliasedPredictor

        history = 4
        unaliased = simulate(
            UnaliasedPredictor(history, counter_bits=1), small_trace
        ).misprediction_ratio
        model = extrapolate_gskew(
            small_trace, history, bank_entries=256, unaliased_rate=unaliased
        )
        measured = simulate(
            make_predictor("gskew:3x256:h4:c1:total"), small_trace
        ).misprediction_ratio
        assert model.misprediction_rate >= measured * 0.9
