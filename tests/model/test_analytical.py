"""Tests for the analytical model (formulas 1-4 and their properties)."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.model.analytical import (
    aliasing_probability,
    aliasing_probability_approx,
    crossover_distance,
    p_dm,
    p_dm_worst_case,
    p_sk,
    p_sk_multibank,
    p_sk_worst_case,
)

PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestAliasingProbability:
    def test_zero_distance_never_aliases(self):
        assert aliasing_probability(0, 1024) == 0.0

    def test_first_encounter_is_certain_alias(self):
        assert aliasing_probability(None, 1024) == 1.0
        assert aliasing_probability_approx(None, 1024) == 1.0

    def test_formula_one_exact(self):
        assert aliasing_probability(10, 100) == pytest.approx(
            1 - (1 - 1 / 100) ** 10
        )

    def test_approximation_close_for_large_n(self):
        exact = aliasing_probability(500, 4096)
        approx = aliasing_probability_approx(500, 4096)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_monotone_in_distance(self):
        values = [aliasing_probability(d, 256) for d in range(0, 2000, 50)]
        assert values == sorted(values)

    def test_monotone_decreasing_in_entries(self):
        assert aliasing_probability(100, 64) > aliasing_probability(100, 4096)

    def test_single_entry_table(self):
        assert aliasing_probability(0, 1) == 0.0
        assert aliasing_probability(5, 1) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            aliasing_probability(5, 0)
        with pytest.raises(ValueError):
            aliasing_probability(-1, 8)
        with pytest.raises(ValueError):
            aliasing_probability_approx(-1, 8)
        with pytest.raises(ValueError):
            aliasing_probability_approx(1, 0)


class TestDestructiveFormulas:
    def test_paper_worst_case_forms(self):
        """At b = 1/2: P_dm = p/2 and P_sk = (3/4)p^2(1-p) + p^3/2."""
        for p in (0.0, 0.1, 0.35, 0.8, 1.0):
            assert p_dm_worst_case(p) == pytest.approx(p / 2)
            assert p_sk_worst_case(p) == pytest.approx(
                0.75 * p * p * (1 - p) + 0.5 * p**3
            )

    @given(PROBS, PROBS)
    def test_outputs_are_probabilities(self, p, b):
        assert 0.0 <= p_dm(p, b) <= 1.0
        assert 0.0 <= p_sk(p, b) <= 1.0

    @given(PROBS)
    def test_skew_beats_direct_mapped_at_equal_p(self, p):
        """P_sk <= P_dm for the same per-bank aliasing probability: the
        vote can only help when p is equal."""
        assert p_sk(p, 0.5) <= p_dm(p, 0.5) + 1e-12

    @given(PROBS, PROBS)
    def test_multibank_reduces_to_paper_formula(self, p, b):
        """The general M-bank expression must equal formula (3) at M=3."""
        assert p_sk_multibank(p, b, 3) == pytest.approx(
            p_sk(p, b), abs=1e-12
        )

    @given(PROBS, PROBS)
    def test_one_bank_reduces_to_direct_mapped(self, p, b):
        assert p_sk_multibank(p, b, 1) == pytest.approx(p_dm(p, b), abs=1e-12)

    def test_bias_extremes_are_harmless(self):
        """b = 0 or 1: every substream agrees, aliasing cannot destroy."""
        for p in (0.2, 0.9):
            assert p_dm(p, 0.0) == 0.0
            assert p_dm(p, 1.0) == 0.0
            assert p_sk(p, 0.0) == pytest.approx(0.0)
            assert p_sk(p, 1.0) == pytest.approx(0.0)

    def test_worst_case_bias_is_half(self):
        for b in (0.1, 0.3, 0.7, 0.95):
            assert p_dm(0.5, b) <= p_dm(0.5, 0.5)
            assert p_sk(0.5, b) <= p_sk(0.5, 0.5) + 1e-12

    def test_quadratic_leading_order(self):
        """For small p, P_sk ~ (3/4) p^2 while P_dm ~ p/2: the polynomial
        vs linear growth that is the paper's central explanation."""
        p = 1e-4
        assert p_sk_worst_case(p) == pytest.approx(0.75 * p * p, rel=1e-3)
        assert p_sk_worst_case(p) / p_dm_worst_case(p) < 0.01

    def test_five_banks_beat_three_at_equal_p(self):
        for p in (0.05, 0.2, 0.5):
            assert p_sk_multibank(p, 0.5, 5) <= p_sk_multibank(p, 0.5, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            p_dm(1.5, 0.5)
        with pytest.raises(ValueError):
            p_sk(0.5, -0.1)
        with pytest.raises(ValueError):
            p_sk_multibank(0.5, 0.5, 2)


class TestCrossover:
    def test_paper_crossover_near_tenth_of_table(self):
        """Equal storage: 3x(N/3) skewed beats N-entry direct-mapped up
        to D ~ N/10 (the paper's reported crossover)."""
        for entries in (3 * 1024, 3 * 4096):
            crossover = crossover_distance(entries, b=0.5, banks=3)
            assert entries / 20 < crossover < entries / 5

    def test_below_crossover_skew_wins(self):
        entries = 3 * 1024
        crossover = crossover_distance(entries)
        d = crossover // 2
        p_bank = aliasing_probability(d, entries // 3)
        p_direct = aliasing_probability(d, entries)
        assert p_sk(p_bank, 0.5) < p_dm(p_direct, 0.5)

    def test_above_crossover_direct_mapped_wins(self):
        """Long distances are capacity aliasing: the redundancy hurts."""
        entries = 3 * 1024
        crossover = crossover_distance(entries)
        d = crossover * 4
        p_bank = aliasing_probability(d, entries // 3)
        p_direct = aliasing_probability(d, entries)
        assert p_sk(p_bank, 0.5) > p_dm(p_direct, 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            crossover_distance(2, banks=3)
