"""Tests for sweep plumbing."""

import pytest

from repro.sim.sweep import SweepResult, history_sweep, size_sweep, sweep_specs


class TestSweepSpecs:
    def test_grid_shape(self, tiny_trace):
        result = sweep_specs(
            [tiny_trace],
            series={
                "gshare": ["gshare:64:h2", "gshare:256:h2"],
                "bimodal": ["bimodal:64", "bimodal:256"],
            },
            points=[64, 256],
        )
        assert result.points == [64, 256]
        assert set(result.series) == {"gshare", "bimodal"}
        ratios = result.ratios("gshare", tiny_trace.name)
        assert len(ratios) == 2
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_mismatched_lengths_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            sweep_specs(
                [tiny_trace],
                series={"gshare": ["gshare:64:h2"]},
                points=[64, 256],
            )

    def test_trace_names(self, tiny_trace):
        result = sweep_specs(
            [tiny_trace],
            series={"bimodal": ["bimodal:64"]},
            points=[64],
        )
        assert result.trace_names() == [tiny_trace.name]


class TestConvenienceSweeps:
    def test_size_sweep(self, tiny_trace):
        result = size_sweep(
            [tiny_trace],
            sizes=[64, 256],
            history_bits=2,
            schemes={
                "gshare": lambda n: f"gshare:{n}:h2",
            },
        )
        ratios = result.ratios("gshare", tiny_trace.name)
        # Bigger tables should not be much worse.
        assert ratios[1] <= ratios[0] + 0.02

    def test_history_sweep(self, tiny_trace):
        result = history_sweep(
            [tiny_trace],
            history_lengths=[0, 2, 4],
            schemes={"gshare": lambda h: f"gshare:256:h{h}"},
        )
        assert result.points == [0, 2, 4]
        assert len(result.ratios("gshare", tiny_trace.name)) == 3


class TestSweepResult:
    def test_add_and_ratios(self):
        from repro.sim.metrics import SimulationResult

        result = SweepResult(points=[1])
        result.add(
            "s",
            SimulationResult(
                predictor="p",
                trace="t",
                conditional_branches=10,
                mispredictions=3,
                storage_bits=64,
            ),
        )
        assert result.ratios("s", "t") == [0.3]
