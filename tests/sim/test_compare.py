"""Tests for the paired statistical comparison utilities."""

import pytest

from repro.predictors.gshare import GsharePredictor
from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.sim.compare import (
    PairedOutcomes,
    bootstrap_difference,
    mcnemar,
    paired_outcomes,
)
from repro.traces.trace import BranchRecord, Trace


def _biased_trace(count=200, taken_ratio=0.8):
    records = [
        BranchRecord(pc=0x100 + 4 * (i % 16), taken=(i % 10) < taken_ratio * 10)
        for i in range(count)
    ]
    return Trace.from_records(records, name="biased")


class TestPairedOutcomes:
    def test_agreement_table_partitions(self, tiny_trace):
        paired = paired_outcomes(
            GsharePredictor(6, 4), GsharePredictor(4, 2), tiny_trace
        )
        assert paired.branches == tiny_trace.conditional_count
        assert len(paired.outcomes) == paired.branches

    def test_identical_predictors_fully_concordant(self, tiny_trace):
        paired = paired_outcomes(
            GsharePredictor(6, 4), GsharePredictor(6, 4), tiny_trace
        )
        assert paired.only_a_correct == 0
        assert paired.only_b_correct == 0

    def test_ratios_match_direct_counts(self):
        trace = _biased_trace()
        paired = paired_outcomes(
            AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), trace
        )
        assert paired.a_misprediction_ratio == pytest.approx(
            1 - trace.taken_ratio
        )
        assert paired.b_misprediction_ratio == pytest.approx(
            trace.taken_ratio
        )

    def test_opposite_predictors_fully_discordant(self):
        trace = _biased_trace()
        paired = paired_outcomes(
            AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), trace
        )
        assert paired.both_correct == 0
        assert paired.both_wrong == 0


class TestMcnemar:
    def test_no_discordance_gives_p_one(self):
        paired = PairedOutcomes(50, 0, 0, 10, outcomes=())
        assert mcnemar(paired) == 1.0

    def test_balanced_discordance_not_significant(self):
        paired = PairedOutcomes(50, 20, 20, 10, outcomes=())
        assert mcnemar(paired) > 0.5

    def test_lopsided_discordance_significant(self):
        paired = PairedOutcomes(50, 80, 5, 10, outcomes=())
        assert mcnemar(paired) < 0.001

    def test_small_counts_use_exact_test(self):
        paired = PairedOutcomes(50, 9, 1, 10, outcomes=())
        p = mcnemar(paired)
        # Exact binomial for 1-of-10 at 0.5: ~0.021.
        assert 0.01 < p < 0.05

    def test_clearly_different_predictors_flagged(self):
        trace = _biased_trace(count=500, taken_ratio=0.9)
        paired = paired_outcomes(
            AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), trace
        )
        assert mcnemar(paired) < 1e-10


class TestBootstrap:
    def test_interval_contains_true_difference(self):
        trace = _biased_trace(count=2000, taken_ratio=0.8)
        paired = paired_outcomes(
            AlwaysTakenPredictor(), AlwaysNotTakenPredictor(), trace
        )
        true_difference = (
            paired.a_misprediction_ratio - paired.b_misprediction_ratio
        )
        low, high = bootstrap_difference(paired, resamples=300, block=64)
        assert low <= true_difference <= high

    def test_identical_predictors_interval_straddles_zero(self, tiny_trace):
        paired = paired_outcomes(
            GsharePredictor(6, 4), GsharePredictor(6, 4), tiny_trace
        )
        low, high = bootstrap_difference(paired, resamples=200)
        assert low <= 0.0 <= high

    def test_deterministic_given_seed(self, tiny_trace):
        paired = paired_outcomes(
            GsharePredictor(6, 4), GsharePredictor(4, 2), tiny_trace
        )
        assert bootstrap_difference(paired, seed=7) == bootstrap_difference(
            paired, seed=7
        )

    def test_empty_outcomes(self):
        paired = PairedOutcomes(0, 0, 0, 0, outcomes=())
        assert bootstrap_difference(paired) == (0.0, 0.0)

    def test_validation(self, tiny_trace):
        paired = paired_outcomes(
            GsharePredictor(6, 4), GsharePredictor(4, 2), tiny_trace
        )
        with pytest.raises(ValueError):
            bootstrap_difference(paired, confidence=1.5)
