"""Equivalence tests: the native C engine vs the generic engine.

The native engine compiles the scan pipeline into C passes (pack,
direct-bucket or LSD radix grouping, fused sequential counter walks);
its correctness argument is bit-identity with
``repro.sim.engine.simulate`` — same SimulationResult, same final
counter values, same final history register — across every spec family
it claims, plus differential fuzz pinning the cffi entry points —
``repro_thread_backend``, ``repro_pack_bucket``, ``repro_pack_sort``,
``repro_scan_sorted``, ``repro_scan_lazy1`` and
``repro_scan_partial_round`` — to scalar oracles (the R006 lint rule
requires every kernel entry point to be referenced here by name).
Grouping-strategy (direct-bucket vs LSD) and thread-count choices must
be byte-invisible, so both are pinned against each other too.

The whole module degrades cleanly when the backend cannot build: every
test that needs the compiled kernel skips with an explicit reason, and
the dispatch tests that *disable* it (``REPRO_NATIVE=0``) keep running,
so the suite is green both with and without a C compiler.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.native import (
    _backend,
    compiler_info,
    native_available,
    native_cell_ok,
    native_supports,
    native_threads,
    run_lazy1_kernel,
    run_partial_kernel,
    run_table_kernel,
    simulate_native,
    sort_strategy,
    word_width_ok,
)
from repro.sim.profile import NULL_STAGE_TIMER
from repro.sim.vectorized import forced_engine, simulate_fast
from repro.traces.trace import Trace

from tests.strategies import traces as trace_strategy

requires_native = pytest.mark.skipif(
    not native_available(),
    reason="native backend unavailable (no C compiler, no cffi, or "
    "REPRO_NATIVE=0); the scan tier covers these specs instead",
)

#: Every spec family the native engine claims, including degenerate
#: geometries (one-entry tables, h=0, history folding, 1-bit counters):
#: the always-update bucket (bimodal/gshare/gselect, single-bank
#: non-LAZY skewed, multi-bank TOTAL skewed/e-gskew), single-bank LAZY
#: (``repro_scan_lazy1``) and multi-bank PARTIAL (the
#: ``repro_scan_partial_round`` fixpoint).
NATIVE_SPECS = [
    "bimodal:256",
    "bimodal:256:c1",
    "bimodal:1",  # degenerate: one entry (entry_bits = 0, zero sort passes)
    "gshare:256:h4",
    "gshare:256:h8",  # history == index bits (pure XOR)
    "gshare:64:h10",  # history > index bits (XOR folding)
    "gshare:256:h0",  # degenerate: PC-indexed
    "gshare:1:h4",  # degenerate: one entry
    "gshare:256:h4:c1",
    "gselect:256:h4",
    "gselect:1:h4",
    "gskew:1x256:h6:partial",  # single bank: PARTIAL == always-update
    "gskew:1x256:h6:total",
    "gskew:1x256:h6:lazy",  # single-bank LAZY: train-on-miss walk
    "gskew:3x256:h6:total",
    "gskew:3x256:h6:total:c1",
    "gskew:5x128:h6:total",
    "egskew:3x256:h6:total",
    "gskew:3x256:h6:partial",  # the paper's flagship policy
    "gskew:5x128:h5:partial",  # 5-bank majority
    "egskew:3x256:h6:partial",
]

#: Specs with no native path: multi-bank LAZY (its frozen-counter
#: coupling has no scan decomposition at all), agree's bias expansion,
#: and schemes with no closed-form index streams.
NO_NATIVE_SPECS = [
    "agree:256:h5",
    "gskew:3x256:h6:lazy",
    "fa:64:h4",
    "unaliased:h6",
]


def _full_state(predictor):
    """Snapshot all mutable predictor state (counters, history)."""
    if hasattr(predictor, "banks"):
        counters = [list(bank.counters.values) for bank in predictor.banks]
    else:
        counters = [list(predictor.bank.counters.values)]
    history = getattr(predictor, "history", None)
    return counters, None if history is None else history.value


@requires_native
class TestEquivalence:
    @pytest.mark.parametrize("spec", NATIVE_SPECS)
    def test_identical_to_generic_engine(self, spec, small_trace):
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        assert native_supports(candidate, small_trace), spec

        expected = simulate(reference, small_trace, label=spec)
        actual = simulate_native(candidate, small_trace, label=spec)

        assert actual == expected
        assert actual.engine == "native"
        assert _full_state(candidate) == _full_state(reference)

    @pytest.mark.parametrize(
        "spec", ["gshare:128:h6", "gskew:3x128:h5:total", "bimodal:128"]
    )
    @pytest.mark.parametrize("warmup", [1, 137, 10**9])
    def test_warmup_equivalence(self, spec, warmup, tiny_trace):
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        expected = simulate(reference, tiny_trace, warmup=warmup)
        actual = simulate_native(candidate, tiny_trace, warmup=warmup)
        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)

    def test_warm_tables_are_honored(self, tiny_trace):
        # Counter state is read from the live predictor, so a second
        # run continues exactly where the generic engine would.  Like
        # every index-stream engine, history is assumed fresh, so the
        # history-free bimodal is the family member that can go twice.
        reference = make_predictor("bimodal:128")
        candidate = make_predictor("bimodal:128")
        simulate(reference, tiny_trace)
        simulate_native(candidate, tiny_trace)
        expected = simulate(reference, tiny_trace)
        actual = simulate_native(candidate, tiny_trace)
        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)


#: Hand-built corner traces: empty, single event, a run of two, pure
#: bias, strict alternation, and an unconditional-only stream.
DEGENERATE_TRACES = {
    "empty": ([], []),
    "one-taken": ([0x40], [1]),
    "one-not-taken": ([0x40], [0]),
    "two-same-slot": ([0x40, 0x40], [1, 0]),
    "all-taken": ([0x40, 0x44, 0x40, 0x44, 0x40], [1, 1, 1, 1, 1]),
    "alternating": ([0x40] * 8, [1, 0, 1, 0, 1, 0, 1, 0]),
}


@requires_native
class TestDegenerateTraces:
    @pytest.mark.parametrize("name", sorted(DEGENERATE_TRACES))
    @pytest.mark.parametrize(
        "spec",
        [
            "bimodal:4",
            "gshare:8:h3",
            "gskew:3x8:h3:total",
            "gskew:1x8:h3:lazy",
            "gskew:3x8:h3:partial",
        ],
    )
    def test_matches_generic_engine(self, name, spec):
        pcs, takens = DEGENERATE_TRACES[name]
        trace = Trace.from_columns(
            pcs, takens, [1] * len(pcs), name=f"degenerate-{name}"
        )
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_native(make_predictor(spec), trace)
        assert actual == expected

    def test_unconditionals_only(self):
        trace = Trace.from_columns([0x40, 0x44], [1, 1], [0, 0])
        spec = "gshare:8:h3"
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_native(make_predictor(spec), trace)
        assert actual == expected
        assert actual.conditional_branches == 0


class TestDispatch:
    @pytest.mark.parametrize("spec", NO_NATIVE_SPECS)
    def test_coupled_predictors_are_rejected(self, spec, tiny_trace):
        predictor = make_predictor(spec)
        assert not native_supports(predictor, tiny_trace)
        if native_available():
            with pytest.raises(ValueError, match="no native path"):
                simulate_native(predictor, tiny_trace)

    @requires_native
    def test_negative_warmup_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="warmup"):
            simulate_native(
                make_predictor("bimodal:64"), tiny_trace, warmup=-1
            )

    def test_word_width_gate(self):
        # 50 entry bits + 3-bank tag + a 4k-event position field cannot
        # pack into 64 bits; 20 entry bits can.
        assert word_width_ok(20, 3, 4000)
        assert not word_width_ok(50, 3, 4000)

    def test_partial_density_gate(self):
        # PARTIAL cells are gated on events-per-entry: a 1-entry bank
        # (entry_bits=0) takes at most 1024 events per the native
        # density ceiling; add cells have no such gate.
        assert native_cell_ok("partial", 0, 3, 1024)
        assert not native_cell_ok("partial", 0, 3, 1025)
        assert native_cell_ok("add", 0, 3, 1025)

    def test_sort_strategy_names(self):
        # Tiny tables bucket directly; huge key spaces fall back to the
        # LSD radix, whose label reflects the thread resolution.
        assert sort_strategy(8, 3, 100_000, 1) == "direct-bucket"
        assert sort_strategy(30, 3, 1000, 1) == "lsd"
        assert sort_strategy(30, 3, 1000, 4) == "threaded-lsd"

    def test_native_threads_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "3")
        assert native_threads() == 3
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "99")  # clamped
        assert native_threads() == 16
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "-2")  # clamped
        assert native_threads() == 1
        monkeypatch.delenv("REPRO_NATIVE_THREADS")
        assert 1 <= native_threads() <= 16

    @requires_native
    def test_simulate_fast_routes_always_update_to_native(
        self, tiny_trace, monkeypatch
    ):
        import repro.sim.native as native_module

        calls = []
        inner = native_module.simulate_native

        def spy(predictor, trace, **kwargs):
            calls.append(type(predictor).__name__)
            return inner(predictor, trace, **kwargs)

        monkeypatch.setattr(native_module, "simulate_native", spy)
        spec = "gskew:3x128:h5:total"
        expected = simulate(make_predictor(spec), tiny_trace)
        actual = simulate_fast(make_predictor(spec), tiny_trace)
        assert actual == expected
        assert actual.engine == "native"
        assert calls == ["SkewedPredictor"]

    def test_compiler_info_shape(self, monkeypatch):
        # With a working toolchain: a dict with the compiler version
        # line, the thread backend (via repro_thread_backend) and the
        # REPRO_NATIVE_THREADS resolution.  With the compiler masked
        # (the no-compiler CI lane): None, never an exception — the
        # bench header must stay writable either way.
        info = compiler_info()
        if info is not None:
            assert isinstance(info, dict)
            assert isinstance(info["compiler"], str) and info["compiler"]
            assert info["thread_backend"] in ("pthreads", "serial", None)
            assert 1 <= info["threads"] <= 16
        monkeypatch.setenv("CC", "/nonexistent/compiler")
        masked = compiler_info()
        if native_available():  # cached build: backend facts remain
            assert masked["compiler"] is None
        else:  # nothing to report at all
            assert masked is None

    def test_kernel_wrappers_fail_cleanly_without_backend(self, monkeypatch):
        # With the backend disabled, every kernel wrapper — add, lazy1
        # and partial — must raise the explicit RuntimeError rather
        # than crash or silently compute; the no-compiler CI lane runs
        # this with the toolchain genuinely absent.
        monkeypatch.setenv("REPRO_NATIVE", "0")
        stream = np.zeros(4, dtype=np.uint64)
        outcomes = np.ones(4, dtype=bool)
        values = np.zeros(2, dtype=np.int64)
        for call in (
            lambda: run_table_kernel(
                [stream], outcomes, values, 1, 1, 3, 0, NULL_STAGE_TIMER
            ),
            lambda: run_lazy1_kernel(
                stream, outcomes, values, 1, 1, 3, 0, NULL_STAGE_TIMER
            ),
            lambda: run_partial_kernel(
                [stream] * 3,
                outcomes,
                np.zeros(6, dtype=np.int64),
                1,
                1,
                3,
                0,
                NULL_STAGE_TIMER,
            ),
        ):
            with pytest.raises(RuntimeError, match="native backend"):
                call()

    def test_repro_native_0_disables_the_tier(self, tiny_trace, monkeypatch):
        import repro.sim.native as native_module

        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert not native_available()

        def forbidden(*args, **kwargs):  # pragma: no cover — would fail
            raise AssertionError("native engine dispatched while disabled")

        monkeypatch.setattr(native_module, "simulate_native", forbidden)
        spec = "gshare:128:h6"
        expected = simulate(make_predictor(spec), tiny_trace)
        actual = simulate_fast(make_predictor(spec), tiny_trace)
        assert actual == expected
        assert actual.engine == "scan"  # fell through to the next tier


class TestForcedEngine:
    def test_unset_means_no_force(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        assert forced_engine() is None

    def test_unknown_value_fails_loudly(self, monkeypatch, tiny_trace):
        monkeypatch.setenv("REPRO_ENGINE", "frobnicate")
        with pytest.raises(ValueError, match="not a known engine"):
            forced_engine()
        with pytest.raises(ValueError, match="not a known engine"):
            simulate_fast(make_predictor("bimodal:64"), tiny_trace)

    @pytest.mark.parametrize(
        "engine", ["generic", "vectorized", "scan", "native"]
    )
    def test_forced_tier_is_recorded(self, engine, tiny_trace, monkeypatch):
        if engine == "native" and not native_available():
            pytest.skip("native backend unavailable; cannot force it")
        monkeypatch.setenv("REPRO_ENGINE", engine)
        spec = "gshare:128:h6"
        actual = simulate_fast(make_predictor(spec), tiny_trace)
        monkeypatch.delenv("REPRO_ENGINE")
        expected = simulate(make_predictor(spec), tiny_trace)
        assert actual == expected
        assert actual.engine == engine

    def test_forced_engine_failure_is_loud(self, tiny_trace, monkeypatch):
        # agree has no native path; a forced native run must raise, not
        # silently measure another tier.
        monkeypatch.setenv("REPRO_ENGINE", "native")
        with pytest.raises(ValueError, match="no native path"):
            simulate_fast(make_predictor("agree:128:h5"), tiny_trace)

    def test_engine_name_is_provenance_not_content(self, tiny_trace):
        # compare=False: results from different tiers stay equal.
        a = simulate(make_predictor("bimodal:64"), tiny_trace)
        b = simulate_fast(make_predictor("bimodal:64"), tiny_trace)
        assert a == b
        assert a.engine == "generic"
        assert b.engine in ("native", "scan")


def _reference_table_loop(
    bank_keys, outcomes, bank_values, threshold, vmax, warmup
):
    """Scalar oracle for one whole kernel pass: per-event majority vote
    over per-bank saturating counters (TOTAL update), miss counting
    gated on ``warmup``.  The loop ``repro_pack_sort`` +
    ``repro_scan_sorted`` replace."""
    banks = len(bank_keys)
    need = banks // 2 + 1
    misses = 0
    for event, taken in enumerate(outcomes):
        votes = 0
        for b in range(banks):
            key = bank_keys[b][event]
            if bank_values[b][key] >= threshold:
                votes += 1
        if ((votes >= need) != taken) and event >= warmup:
            misses += 1
        for b in range(banks):
            key = bank_keys[b][event]
            v = bank_values[b][key]
            if taken:
                if v < vmax:
                    bank_values[b][key] = v + 1
            elif v > 0:
                bank_values[b][key] = v - 1
    return misses


@requires_native
class TestKernelEntryPoints:
    def test_repro_thread_backend_reports_a_real_backend(self):
        _, lib = _backend()
        assert lib.repro_thread_backend() in (0, 1)

    @pytest.mark.parametrize("threads", [1, 4])
    def test_repro_pack_sort_is_a_stable_grouping(self, threads):
        # Grouped-by-key with positions ascending inside each group is
        # exactly the full-word sorted order (position bits break ties),
        # so a plain Python sort of the packed words is the oracle.
        # The per-bank LSD only sorts entry bytes, but bank blocks are
        # laid out tag-ascending, so the global order still falls out —
        # at any thread count.
        ffi, lib = _backend()
        entry_bits, banks = 2, 3
        local = [[3, 1, 3, 0, 3, 1], [0, 0, 2, 2, 1, 1], [1, 3, 1, 3, 1, 3]]
        outcomes = [1, 0, 1, 1, 0, 0]
        n = len(outcomes)
        shift = max(1, (n - 1).bit_length()) + 1
        keys = np.array(
            [k | (b << entry_bits) for b in range(banks) for k in local[b]],
            dtype=np.uint64,
        )
        out = np.empty(banks * n, dtype=np.uint64)
        scratch = np.empty(banks * n, dtype=np.uint64)
        lib.repro_pack_sort(
            ffi.from_buffer("uint64_t[]", keys),
            ffi.from_buffer(
                "uint8_t[]", np.array(outcomes, dtype=np.uint8)
            ),
            n,
            banks,
            shift,
            entry_bits,
            ffi.from_buffer("uint64_t[]", out),
            ffi.from_buffer("uint64_t[]", scratch),
            threads,
        )
        words = [
            (int(keys[b * n + i]) << shift) | (i << 1) | outcomes[i]
            for b in range(banks)
            for i in range(n)
        ]
        assert out.tolist() == sorted(words)

    @pytest.mark.parametrize("threads", [1, 4])
    def test_repro_pack_bucket_matches_the_sorted_order(self, threads):
        # The direct-bucket scatter must produce byte-for-byte the same
        # grouped words as the radix path: the stable grouped order is
        # unique, so sorted packed words are again the oracle.
        ffi, lib = _backend()
        entry_bits, banks = 2, 3
        local = [[3, 1, 3, 0, 3, 1], [0, 0, 2, 2, 1, 1], [1, 3, 1, 3, 1, 3]]
        outcomes = [1, 0, 1, 1, 0, 0]
        n = len(outcomes)
        shift = max(1, (n - 1).bit_length()) + 1
        keys = np.array(
            [k | (b << entry_bits) for b in range(banks) for k in local[b]],
            dtype=np.uint64,
        )
        entries = banks << entry_bits
        counts = np.empty(threads * entries, dtype=np.int64)
        out = np.empty(banks * n, dtype=np.uint64)
        lib.repro_pack_bucket(
            ffi.from_buffer("uint64_t[]", keys),
            ffi.from_buffer(
                "uint8_t[]", np.array(outcomes, dtype=np.uint8)
            ),
            n,
            banks,
            shift,
            entries,
            ffi.from_buffer("int64_t[]", counts),
            ffi.from_buffer("uint64_t[]", out),
            threads,
        )
        words = [
            (int(keys[b * n + i]) << shift) | (i << 1) | outcomes[i]
            for b in range(banks)
            for i in range(n)
        ]
        assert out.tolist() == sorted(words)

    def test_repro_scan_sorted_empty_input(self):
        ffi, lib = _backend()
        values = np.array([0, 3], dtype=np.int64)
        misses = lib.repro_scan_sorted(
            ffi.from_buffer("uint64_t[]", np.empty(0, dtype=np.uint64)),
            0,
            2,
            2,
            3,
            ffi.from_buffer("int64_t[]", values),
            0,
            1,
            1,
            ffi.NULL,
            0,
        )
        assert misses == 0
        assert values.tolist() == [0, 3]

    # Differential fuzz of the full repro_pack_sort + repro_scan_sorted
    # pipeline (via run_table_kernel's marshalling) against the scalar
    # voted-table oracle: small tables force heavy aliasing, odd bank
    # counts exercise the complement-trick majority, warmup draws
    # straddle the trace, and 1-bit counters hit both saturation rails.
    @given(
        data=st.data(),
        banks=st.sampled_from([1, 3, 5]),
        entry_bits=st.integers(0, 3),
        max_value=st.sampled_from([1, 3, 7]),
        length=st.integers(1, 120),
    )
    @settings(max_examples=120, deadline=None)
    def test_kernel_matches_scalar_oracle(
        self, data, banks, entry_bits, max_value, length
    ):
        table = 1 << entry_bits
        threshold = data.draw(st.integers(1, max_value), label="threshold")
        warmup = data.draw(st.integers(0, length + 1), label="warmup")
        bank_keys = [
            data.draw(
                st.lists(
                    st.integers(0, table - 1),
                    min_size=length,
                    max_size=length,
                ),
                label=f"keys{b}",
            )
            for b in range(banks)
        ]
        outcomes = data.draw(
            st.lists(st.booleans(), min_size=length, max_size=length),
            label="outcomes",
        )
        init = [
            data.draw(
                st.lists(
                    st.integers(0, max_value),
                    min_size=table,
                    max_size=table,
                ),
                label=f"init{b}",
            )
            for b in range(banks)
        ]

        values = np.concatenate(
            [np.asarray(bank, dtype=np.int64) for bank in init]
        )
        misses = run_table_kernel(
            [np.asarray(keys, dtype=np.uint64) for keys in bank_keys],
            np.asarray(outcomes, dtype=bool),
            values,
            entry_bits,
            threshold,
            max_value,
            warmup,
            NULL_STAGE_TIMER,
        )

        oracle_values = [list(bank) for bank in init]
        expected = _reference_table_loop(
            bank_keys, outcomes, oracle_values, threshold, max_value, warmup
        )
        assert misses == expected
        assert values.tolist() == [v for bank in oracle_values for v in bank]

    @given(
        spec=st.sampled_from(
            [
                "bimodal:8",
                "gshare:16:h4",
                "gselect:16:h3",
                "gskew:3x16:h3:total",
                "egskew:3x16:h3:total",
                "gskew:1x16:h3:lazy",
                "gskew:3x16:h3:partial",
                "gskew:5x8:h3:partial",
            ]
        ),
        trace=trace_strategy(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_match_generic_engine(self, spec, trace):
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        expected = simulate(reference, trace)
        actual = simulate_native(candidate, trace)
        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)


def _reference_lazy1_loop(keys, outcomes, values, threshold, vmax, warmup):
    """Scalar oracle for ``repro_scan_lazy1``: single bank, train only
    when the bank's own prediction is wrong (LAZY)."""
    misses = 0
    for event, taken in enumerate(outcomes):
        key = keys[event]
        wrong = (values[key] >= threshold) != taken
        if wrong and event >= warmup:
            misses += 1
        if wrong:
            v = values[key]
            if taken:
                if v < vmax:
                    values[key] = v + 1
            elif v > 0:
                values[key] = v - 1
    return misses


def _reference_partial_loop(
    bank_keys, outcomes, bank_values, threshold, vmax, warmup
):
    """Scalar oracle for the PARTIAL fixpoint: majority vote; on a
    wrong vote every bank trains, on a correct vote only the banks
    whose own prediction matched the outcome."""
    banks = len(bank_keys)
    need = banks // 2 + 1
    misses = 0
    for event, taken in enumerate(outcomes):
        preds = [
            bank_values[b][bank_keys[b][event]] >= threshold
            for b in range(banks)
        ]
        vote_wrong = (sum(preds) >= need) != taken
        if vote_wrong and event >= warmup:
            misses += 1
        for b in range(banks):
            if vote_wrong or preds[b] == taken:
                key = bank_keys[b][event]
                v = bank_values[b][key]
                if taken:
                    if v < vmax:
                        bank_values[b][key] = v + 1
                elif v > 0:
                    bank_values[b][key] = v - 1
    return misses


@requires_native
class TestMapCodeKernels:
    """Fuzz ``repro_scan_lazy1`` and ``repro_scan_partial_round``
    (through their driver wrappers) against scalar oracles."""

    @given(
        data=st.data(),
        entry_bits=st.integers(0, 3),
        max_value=st.sampled_from([1, 3, 7]),
        length=st.integers(1, 120),
    )
    @settings(max_examples=120, deadline=None)
    def test_lazy1_matches_scalar_oracle(
        self, data, entry_bits, max_value, length
    ):
        table = 1 << entry_bits
        threshold = data.draw(st.integers(1, max_value), label="threshold")
        warmup = data.draw(st.integers(0, length + 1), label="warmup")
        keys = data.draw(
            st.lists(
                st.integers(0, table - 1), min_size=length, max_size=length
            ),
            label="keys",
        )
        outcomes = data.draw(
            st.lists(st.booleans(), min_size=length, max_size=length),
            label="outcomes",
        )
        init = data.draw(
            st.lists(
                st.integers(0, max_value), min_size=table, max_size=table
            ),
            label="init",
        )

        values = np.asarray(init, dtype=np.int64)
        misses = run_lazy1_kernel(
            np.asarray(keys, dtype=np.uint64),
            np.asarray(outcomes, dtype=bool),
            values,
            entry_bits,
            threshold,
            max_value,
            warmup,
            NULL_STAGE_TIMER,
        )

        oracle_values = list(init)
        expected = _reference_lazy1_loop(
            keys, outcomes, oracle_values, threshold, max_value, warmup
        )
        assert misses == expected
        assert values.tolist() == oracle_values

    @given(
        data=st.data(),
        banks=st.sampled_from([3, 5]),
        entry_bits=st.integers(0, 3),
        max_value=st.sampled_from([1, 3]),
        length=st.integers(1, 120),
    )
    @settings(max_examples=120, deadline=None)
    def test_partial_matches_scalar_oracle(
        self, data, banks, entry_bits, max_value, length
    ):
        table = 1 << entry_bits
        threshold = data.draw(st.integers(1, max_value), label="threshold")
        warmup = data.draw(st.integers(0, length + 1), label="warmup")
        bank_keys = [
            data.draw(
                st.lists(
                    st.integers(0, table - 1),
                    min_size=length,
                    max_size=length,
                ),
                label=f"keys{b}",
            )
            for b in range(banks)
        ]
        outcomes = data.draw(
            st.lists(st.booleans(), min_size=length, max_size=length),
            label="outcomes",
        )
        init = [
            data.draw(
                st.lists(
                    st.integers(0, max_value),
                    min_size=table,
                    max_size=table,
                ),
                label=f"init{b}",
            )
            for b in range(banks)
        ]

        values = np.concatenate(
            [np.asarray(bank, dtype=np.int64) for bank in init]
        )
        misses = run_partial_kernel(
            [np.asarray(keys, dtype=np.uint64) for keys in bank_keys],
            np.asarray(outcomes, dtype=bool),
            values,
            entry_bits,
            threshold,
            max_value,
            warmup,
            NULL_STAGE_TIMER,
        )

        # None = round cap (the driver's honest bail-out signal, taken
        # by the exact-loop fallback in real dispatch) — not a miss
        # count to compare.
        assume(misses is not None)
        oracle_values = [list(bank) for bank in init]
        expected = _reference_partial_loop(
            bank_keys, outcomes, oracle_values, threshold, max_value, warmup
        )
        assert misses == expected
        assert values.tolist() == [v for bank in oracle_values for v in bank]


@requires_native
class TestStrategyAndThreadInvariance:
    """Grouping strategy (direct-bucket vs LSD) and thread count are
    wall-clock knobs only: results must be byte-identical."""

    SPECS = [
        "gshare:256:h8",
        "gskew:3x256:h6:total",
        "gskew:1x256:h6:lazy",
        "gskew:3x256:h6:partial",
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_threads_1_vs_4_bit_identical(self, spec, small_trace, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "1")
        serial_pred = make_predictor(spec)
        serial = simulate_native(serial_pred, small_trace)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "4")
        threaded_pred = make_predictor(spec)
        threaded = simulate_native(threaded_pred, small_trace)
        assert serial == threaded
        assert _full_state(serial_pred) == _full_state(threaded_pred)

    @pytest.mark.parametrize("spec", SPECS)
    def test_forced_lsd_matches_direct_bucket(
        self, spec, small_trace, monkeypatch
    ):
        import repro.sim.native as native_module

        bucket_pred = make_predictor(spec)
        bucket = simulate_native(bucket_pred, small_trace)
        # Shrink the bucket gate to nothing so every geometry takes the
        # LSD radix path.
        monkeypatch.setattr(native_module, "_BUCKET_MAX_KEYS", 0)
        lsd_pred = make_predictor(spec)
        lsd = simulate_native(lsd_pred, small_trace)
        assert bucket == lsd
        assert _full_state(bucket_pred) == _full_state(lsd_pred)

    def test_partial_round_cap_falls_back_to_exact_loop(
        self, tiny_trace, monkeypatch
    ):
        import repro.sim.native as native_module

        # A zero round budget can never converge: run_partial_kernel
        # reports None and simulate_native must fall back to the exact
        # sequential loop, still bit-identical to the generic engine.
        monkeypatch.setattr(native_module, "_PARTIAL_ROUND_LIMIT", 0)
        spec = "gskew:3x64:h4:partial"
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        expected = simulate(reference, tiny_trace)
        actual = simulate_native(candidate, tiny_trace)
        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)
