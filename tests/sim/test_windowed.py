"""Tests for windowed misprediction measurement."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.static import AlwaysTakenPredictor
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.windowed import windowed_misprediction
from repro.traces.trace import BranchRecord, Trace

from tests.strategies import traces as trace_strategy


def _trace(outcomes):
    return Trace.from_records(
        [BranchRecord(pc=0x100, taken=t) for t in outcomes]
    )


class TestWindowing:
    def test_window_boundaries(self):
        trace = _trace([True] * 5 + [False] * 5)
        result = windowed_misprediction(
            AlwaysTakenPredictor(), trace, window=5
        )
        assert result.misses == [0, 5]
        assert result.branches == [5, 5]
        assert result.ratios == [0.0, 1.0]

    def test_partial_final_window(self):
        trace = _trace([False] * 7)
        result = windowed_misprediction(
            AlwaysTakenPredictor(), trace, window=5
        )
        assert result.branches == [5, 2]
        assert result.misses == [5, 2]

    def test_overall_matches_engine(self, small_trace):
        windowed = windowed_misprediction(
            BimodalPredictor(8), small_trace, window=1000
        )
        direct = simulate(BimodalPredictor(8), small_trace)
        assert windowed.overall == pytest.approx(
            direct.misprediction_ratio
        )
        assert sum(windowed.branches) == direct.conditional_branches

    def test_unconditionals_not_counted(self):
        records = [
            BranchRecord(pc=0x100, taken=True, conditional=False)
        ] * 10 + [BranchRecord(pc=0x104, taken=True)]
        result = windowed_misprediction(
            AlwaysTakenPredictor(), Trace.from_records(records), window=5
        )
        assert sum(result.branches) == 1

    def test_empty_trace(self):
        result = windowed_misprediction(
            AlwaysTakenPredictor(), _trace([]), window=5
        )
        assert result.ratios == []
        assert result.overall == 0.0
        assert result.steady_state() == 0.0
        assert result.cold_start() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            windowed_misprediction(AlwaysTakenPredictor(), _trace([]), window=0)


class TestFuzzDifferential:
    # Windowed measurement re-implements the simulation loop (it
    # interleaves window bookkeeping with predict/update); random
    # traces pin its totals to the generic engine's.
    @given(
        spec=st.sampled_from(
            ["bimodal:8", "gshare:16:h4", "gskew:3x16:h3:partial"]
        ),
        trace=trace_strategy(),
        window=st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_totals_match_generic_engine(self, spec, trace, window):
        result = windowed_misprediction(
            make_predictor(spec), trace, window=window
        )
        direct = simulate(make_predictor(spec), trace)
        assert sum(result.misses) == direct.mispredictions
        assert sum(result.branches) == direct.conditional_branches
        # Window partitioning is exact: every full window holds
        # `window` branches, only the final one may be short.
        assert all(b == window for b in result.branches[:-1])
        if result.branches:
            assert 1 <= result.branches[-1] <= window


class TestPhases:
    def test_cold_start_higher_for_learning_predictor(self):
        """A bimodal table learning a steady all-not-taken branch set
        mispredicts early, then not at all."""
        outcomes = [False] * 4000
        result = windowed_misprediction(
            BimodalPredictor(4), _trace(outcomes), window=200
        )
        assert result.cold_start() >= result.steady_state()
        assert result.warmup_penalty >= 0.0

    def test_real_trace_warmup_visible(self, small_trace):
        result = windowed_misprediction(
            BimodalPredictor(8), small_trace, window=1000
        )
        # Not asserting the sign (phases can dominate), but the pieces
        # must be consistent with each other.
        assert result.warmup_penalty == pytest.approx(
            result.cold_start() - result.steady_state()
        )
