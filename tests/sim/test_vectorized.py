"""Equivalence tests: the vectorized engine vs the generic engine.

The vectorized engine precomputes per-bank index streams with numpy and
must be *bit-identical* to ``repro.sim.engine.simulate`` — same
SimulationResult, same final counter values, same final history register
— for every supported predictor family, across all three gskew update
policies.  Unsupported predictors must fall back cleanly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.egskew import EnhancedSkewedPredictor
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.vectorized import (
    history_stream,
    simulate_fast,
    simulate_vectorized,
    supports,
)

from tests.strategies import traces as trace_strategy

#: Every spec family the vectorized engine claims to support, including
#: all three skewed-update policies, 1/3/5-bank gskew, gshare history
#: folding (h > index bits) and 1-bit counters.
SUPPORTED_SPECS = [
    "bimodal:256",
    "bimodal:256:c1",
    "gshare:256:h4",
    "gshare:256:h8",  # history == index bits (pure XOR)
    "gshare:64:h10",  # history > index bits (XOR folding)
    "gshare:256:h0",  # degenerate: PC-indexed
    "gshare:1:h4",  # degenerate: one entry (index bits = 0, hung once)
    "gshare:256:h4:c1",
    "gselect:256:h4",
    "gselect:1:h4",  # degenerate: one entry
    "gselect:256:h6:c1",
    "gskew:1x256:h6:partial",
    "gskew:1x256:h6:lazy",
    "gskew:3x256:h6:partial",
    "gskew:3x256:h6:total",
    "gskew:3x256:h6:lazy",
    "gskew:3x256:h6:partial:c1",
    "gskew:5x128:h6:partial",
    "gskew:5x128:h6:total",
    "egskew:3x256:h6:partial",
    "egskew:3x256:h6:total",
    "egskew:3x256:h6:lazy",
]

UNSUPPORTED_SPECS = [
    "fa:64:h4",
    "unaliased:h6",
]


def _counter_state(predictor):
    """Snapshot every saturating counter of a predictor."""
    if hasattr(predictor, "banks"):
        return [list(bank.counters.values) for bank in predictor.banks]
    if hasattr(predictor, "bank"):
        return [list(predictor.bank.counters.values)]
    return None


def _history_state(predictor):
    history = getattr(predictor, "history", None)
    return None if history is None else history.value


class TestEquivalence:
    @pytest.mark.parametrize("spec", SUPPORTED_SPECS)
    def test_identical_to_generic_engine(self, spec, small_trace):
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        assert supports(candidate, small_trace), spec

        expected = simulate(reference, small_trace, label=spec)
        actual = simulate_vectorized(candidate, small_trace, label=spec)

        assert actual == expected
        assert _counter_state(candidate) == _counter_state(reference)
        assert _history_state(candidate) == _history_state(reference)

    @pytest.mark.parametrize("warmup", [1, 137, 10**9])
    def test_warmup_equivalence(self, warmup, tiny_trace):
        spec = "gskew:3x128:h5:partial"
        expected = simulate(make_predictor(spec), tiny_trace, warmup=warmup)
        actual = simulate_vectorized(
            make_predictor(spec), tiny_trace, warmup=warmup
        )
        assert actual == expected

    def test_egskew_bank0_history_ablation(self, tiny_trace):
        reference = EnhancedSkewedPredictor(
            bank_index_bits=7, history_bits=5, bank0_history_bits=3
        )
        candidate = EnhancedSkewedPredictor(
            bank_index_bits=7, history_bits=5, bank0_history_bits=3
        )
        assert supports(candidate, tiny_trace)
        expected = simulate(reference, tiny_trace)
        actual = simulate_vectorized(candidate, tiny_trace)
        assert actual == expected
        assert _counter_state(candidate) == _counter_state(reference)


class TestFuzzEquivalence:
    # The coupled-update policies (multi-bank PARTIAL/LAZY) have no
    # scan path, so this is the only fuzz that reaches the sequential
    # counter loop; the spec pool mirrors the scan suite's otherwise.
    @given(
        spec=st.sampled_from(
            [
                "bimodal:8",
                "gshare:16:h4",
                "gskew:3x16:h3:partial",
                "gskew:3x16:h3:lazy",
                "egskew:3x16:h3:partial",
            ]
        ),
        trace=trace_strategy(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_match_generic_engine(self, spec, trace):
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_vectorized(make_predictor(spec), trace)
        assert actual == expected


class TestDispatch:
    @pytest.mark.parametrize("spec", UNSUPPORTED_SPECS)
    def test_unsupported_predictors_are_rejected(self, spec, tiny_trace):
        predictor = make_predictor(spec)
        assert not supports(predictor, tiny_trace)
        with pytest.raises(ValueError, match="no vectorized path"):
            simulate_vectorized(predictor, tiny_trace)

    @pytest.mark.parametrize("spec", UNSUPPORTED_SPECS)
    def test_simulate_fast_falls_back(self, spec, tiny_trace):
        expected = simulate(make_predictor(spec), tiny_trace, label=spec)
        actual = simulate_fast(make_predictor(spec), tiny_trace, label=spec)
        assert actual == expected

    def test_custom_skew_family_falls_back(self, tiny_trace):
        from repro.core.gskew import SkewedPredictor
        from repro.core.skew import skew_function_family

        functions = skew_function_family(7, banks=3)
        predictor = SkewedPredictor(
            bank_index_bits=7, history_bits=5, functions=functions
        )
        # Explicit functions may be anything; the closed-form index
        # streams only cover the default family.
        assert not supports(predictor, tiny_trace)

    def test_negative_warmup_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="warmup"):
            simulate_vectorized(
                make_predictor("bimodal:64"), tiny_trace, warmup=-1
            )


class TestHistoryStream:
    def test_matches_scalar_shift_register(self):
        rng = np.random.default_rng(3)
        takens = rng.integers(0, 2, size=200, dtype=np.uint8)
        bits = 6
        stream = history_stream(takens, bits)

        value = 0
        mask = (1 << bits) - 1
        for i, taken in enumerate(takens):
            assert stream[i] == value
            value = ((value << 1) | int(taken)) & mask
        assert len(stream) == len(takens)

    def test_zero_bits(self):
        takens = np.array([1, 0, 1], dtype=np.uint8)
        assert history_stream(takens, 0).tolist() == [0, 0, 0]
