"""Tests for the trace-driven simulation engine."""

import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.static import AlwaysTakenPredictor
from repro.sim.engine import simulate
from repro.traces.trace import BranchRecord, Trace


def _trace(records):
    return Trace.from_records(records, name="crafted")


class TestCounting:
    def test_always_taken_counts_not_takens(self):
        trace = _trace(
            [
                BranchRecord(pc=0x100, taken=True),
                BranchRecord(pc=0x104, taken=False),
                BranchRecord(pc=0x108, taken=False),
            ]
        )
        result = simulate(AlwaysTakenPredictor(), trace)
        assert result.conditional_branches == 3
        assert result.mispredictions == 2
        assert result.misprediction_ratio == pytest.approx(2 / 3)

    def test_unconditionals_not_scored(self):
        trace = _trace(
            [
                BranchRecord(pc=0x100, taken=False, conditional=False),
                BranchRecord(pc=0x104, taken=False, conditional=True),
            ]
        )
        result = simulate(AlwaysTakenPredictor(), trace)
        assert result.conditional_branches == 1
        assert result.mispredictions == 1

    def test_unconditionals_shift_history(self):
        """gshare prediction after an unconditional must reflect it."""
        trace_records = [
            BranchRecord(pc=0x104, taken=True, conditional=False),
            BranchRecord(pc=0x100, taken=True, conditional=True),
        ]
        predictor = GsharePredictor(index_bits=6, history_bits=4)
        simulate(predictor, _trace(trace_records))
        assert predictor.history.value == 0b11

    def test_hand_computed_bimodal(self):
        """Exact misprediction count for a known 2-bit counter walk."""
        outcomes = [False, False, True, False, False]
        trace = _trace(
            [BranchRecord(pc=0x100, taken=t) for t in outcomes]
        )
        result = simulate(BimodalPredictor(index_bits=4), trace)
        # Counter walk from weakly-taken (2):
        #  predict T (2) vs F -> miss, counter 1
        #  predict F (1) vs F -> hit, counter 0
        #  predict F (0) vs T -> miss, counter 1
        #  predict F (1) vs F -> hit, counter 0
        #  predict F (0) vs F -> hit, counter 0
        assert result.mispredictions == 2

    def test_empty_trace(self):
        result = simulate(AlwaysTakenPredictor(), _trace([]))
        assert result.conditional_branches == 0
        assert result.misprediction_ratio == 0.0


class TestWarmup:
    def test_warmup_excludes_initial_branches(self):
        trace = _trace(
            [BranchRecord(pc=0x100, taken=False)] * 10
        )
        cold = simulate(BimodalPredictor(4), trace)
        warm = simulate(BimodalPredictor(4), trace, warmup=2)
        assert cold.mispredictions == 1  # weakly-taken start costs one
        assert warm.mispredictions == 0
        assert warm.conditional_branches == 8

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            simulate(AlwaysTakenPredictor(), _trace([]), warmup=-1)


class TestResultMetadata:
    def test_labels_and_storage(self, tiny_trace):
        predictor = GsharePredictor(6, 4)
        result = simulate(predictor, tiny_trace, label="my-gshare")
        assert result.predictor == "my-gshare"
        assert result.trace == tiny_trace.name
        assert result.storage_bits == predictor.storage_bits
        assert result.history_bits == 4

    def test_default_label_is_scheme_name(self, tiny_trace):
        result = simulate(GsharePredictor(6, 4), tiny_trace)
        assert result.predictor == "gshare"

    def test_accuracy_complementarity(self, tiny_trace):
        result = simulate(GsharePredictor(6, 4), tiny_trace)
        assert result.accuracy == pytest.approx(
            1.0 - result.misprediction_ratio
        )

    def test_str_rendering(self, tiny_trace):
        text = str(simulate(GsharePredictor(6, 4), tiny_trace))
        assert "gshare" in text
        assert "misprediction" in text
