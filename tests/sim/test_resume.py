"""Warm-history resume equivalence: split runs == one run, per tier.

The serving layer feeds each tenant's stream to the engines as a
sequence of micro-batches, so every fast tier must now handle a
predictor whose global history register is *non-zero* at trace start —
the seed-threading added alongside serving.  These tests pin that
contract at the engine level, independent of any serving machinery:
running a trace in two (or many) pieces on one warm predictor is
bit-identical to running it whole, for every tier that expresses the
family.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import make_predictor
from repro.sim.engine import simulate, simulate_stream
from repro.sim.native import native_available, native_supports, simulate_native
from repro.sim.scan import scan_supports, simulate_scan
from repro.sim.state import PredictorState
from repro.sim.vectorized import simulate_fast, simulate_vectorized, supports

from tests.strategies import traces as trace_strategy

SPLIT_SPECS = [
    "bimodal:128",
    "gshare:128:h6",
    "gshare:32:h9",  # folding: history wider than index
    "gselect:128:h4",
    "gskew:3x128:h5:total",
    "gskew:3x128:h5:partial",
    "gskew:1x128:h5:lazy",
    "egskew:3x128:h6:partial",
    "agree:128:h6",
]


def _digest(predictor) -> str:
    return PredictorState.capture(predictor).digest()


def _run_split(engine, gate, spec, trace, cuts):
    """Run ``trace`` through ``engine`` in pieces at ``cuts``; the warm
    predictor carries across pieces.  Returns (misses, digest)."""
    predictor = make_predictor(spec)
    bounds = [0, *sorted(cuts), len(trace)]
    misses = 0
    for lo, hi in zip(bounds, bounds[1:]):
        if lo == hi:
            continue
        part = trace.slice(lo, hi)
        if gate is not None and not gate(predictor, part):
            pytest.skip(f"{spec}: tier does not express this family")
        misses += engine(predictor, part, label=spec).mispredictions
    return misses, _digest(predictor)


TIERS = [
    ("generic", simulate, None),
    ("vectorized", simulate_vectorized, lambda p, t: supports(p, t)),
    ("scan", simulate_scan, lambda p, t: scan_supports(p, t)),
    (
        "native",
        simulate_native,
        lambda p, t: native_available() and native_supports(p, t),
    ),
    ("fast", simulate_fast, None),
]


class TestWarmResume:
    @pytest.mark.parametrize("tier,engine,gate", TIERS,
                             ids=[name for name, _, _ in TIERS])
    @pytest.mark.parametrize("spec", SPLIT_SPECS)
    def test_split_run_equals_whole_run(self, tier, engine, gate, spec,
                                        small_trace):
        whole = simulate(make_predictor(spec), small_trace, label=spec)
        reference = make_predictor(spec)
        simulate(reference, small_trace, label=spec)

        # Cuts chosen to land mid-history-window: the second piece starts
        # with a partially-filled register that the tier must seed from.
        misses, digest = _run_split(
            engine, gate, spec, small_trace,
            cuts=[3, len(small_trace) // 3, len(small_trace) - 5],
        )
        assert misses == whole.mispredictions
        assert digest == _digest(reference)

    @settings(max_examples=30, deadline=None)
    @given(
        trace=trace_strategy(max_length=200),
        cuts=st.lists(st.integers(0, 200), max_size=6),
        spec=st.sampled_from(
            ["gshare:64:h6", "gskew:3x64:h4:partial", "agree:64:h5"]
        ),
    )
    def test_fast_ladder_any_cut_points(self, trace, cuts, spec):
        whole = simulate(make_predictor(spec), trace, label=spec)
        reference = make_predictor(spec)
        simulate(reference, trace, label=spec)
        cuts = [min(c, len(trace)) for c in cuts]
        misses, digest = _run_split(simulate_fast, None, spec, trace, cuts)
        assert misses == whole.mispredictions
        assert digest == _digest(reference)

    @pytest.mark.parametrize("spec", ["gshare:128:h7", "gskew:3x128:h5:total"])
    def test_single_event_batches(self, spec, tiny_trace):
        """The pathological case: every batch is one event long."""
        whole = simulate(make_predictor(spec), tiny_trace, label=spec)
        reference = make_predictor(spec)
        simulate(reference, tiny_trace, label=spec)
        misses, digest = _run_split(
            simulate_fast, None, spec, tiny_trace,
            cuts=list(range(1, len(tiny_trace))),
        )
        assert misses == whole.mispredictions
        assert digest == _digest(reference)


class TestSimulateStream:
    """The reference batched-continuation entry point in the engine."""

    def test_stream_equals_whole(self, small_trace):
        spec = "gshare:128:h6"
        whole = simulate(make_predictor(spec), small_trace, label=spec)
        predictor = make_predictor(spec)
        batches = [
            small_trace.slice(lo, min(lo + 33, len(small_trace)))
            for lo in range(0, len(small_trace), 33)
        ]
        streamed = simulate_stream(predictor, batches, label=spec)
        assert streamed.mispredictions == whole.mispredictions
        assert streamed.conditional_branches == whole.conditional_branches

    def test_empty_stream(self):
        predictor = make_predictor("bimodal:64")
        result = simulate_stream(predictor, [])
        assert result.conditional_branches == 0
        assert result.mispredictions == 0

    def test_stride_split_round_trips_events(self, small_trace):
        parts = small_trace.stride_split(3)
        assert sum(len(p) for p in parts) == len(small_trace)
        assert [int(p.pcs[0]) for p in parts] == [
            int(small_trace.pcs[i]) for i in range(3)
        ]
