"""Tests for the parallel sweep runner.

The guarantee under test: a parallel sweep produces a SweepResult grid
*identical* to the serial one — same cell order, same numbers — and the
``jobs`` conventions (``REPRO_JOBS`` env default, ``0`` = one per CPU,
``1`` = strictly serial) hold.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.parallel import (
    JOBS_ENV_VAR,
    resolve_jobs,
    run_cells,
    simulate_specs,
)
from repro.sim.sweep import sweep_specs


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_invalid_env_var_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        assert resolve_jobs(None) == 1

    def test_explicit_jobs_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestRunCells:
    def test_parallel_matches_serial(self, tiny_trace):
        cells = [
            (0, "gshare:128:h4"),
            (0, "gskew:3x64:h4:partial"),
            (0, "gskew:3x64:h4:total"),
            (0, "bimodal:128"),
            (0, "fa:32:h4"),  # generic-engine fallback inside a worker
        ]
        serial = run_cells([tiny_trace], cells, jobs=1)
        parallel = run_cells([tiny_trace], cells, jobs=4)
        assert parallel == serial
        assert [r.predictor for r in parallel] == [spec for _, spec in cells]

    def test_simulate_specs_alignment(self, tiny_trace):
        specs = ["bimodal:64", "gshare:64:h3", "gselect:64:h3"]
        results = simulate_specs(tiny_trace, specs, jobs=2)
        assert [r.predictor for r in results] == specs
        assert all(r.trace == tiny_trace.name for r in results)


class TestParallelSweeps:
    @pytest.fixture(scope="class")
    def series(self):
        return {
            "gshare": ["gshare:64:h3", "gshare:256:h3"],
            "gskew": ["gskew:3x64:h3:partial", "gskew:3x256:h3:partial"],
        }

    def test_grids_identical_to_serial(self, tiny_trace, small_trace, series):
        traces = [tiny_trace, small_trace]
        serial = sweep_specs(traces, series, points=[64, 256], jobs=1)
        parallel = sweep_specs(traces, series, points=[64, 256], jobs=4)
        assert parallel.points == serial.points
        assert parallel.series == serial.series

    def test_env_var_reaches_sweeps(self, tiny_trace, series, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        by_env = sweep_specs([tiny_trace], series, points=[64, 256])
        monkeypatch.delenv(JOBS_ENV_VAR)
        serial = sweep_specs([tiny_trace], series, points=[64, 256])
        assert by_env.series == serial.series
