"""Tests for the parallel sweep runner.

The guarantee under test: a parallel sweep produces a SweepResult grid
*identical* to the serial one — same cell order, same numbers — and the
``jobs`` conventions (``REPRO_JOBS`` env default, ``0`` = one per CPU,
``1`` = strictly serial) hold.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.sim.parallel as parallel_module
from repro.resilience.faults import FAULTS_ENV_VAR, reset_faults
from repro.sim.config import make_predictor
from repro.sim.parallel import (
    JOBS_ENV_VAR,
    _chunk_cells,
    grid_fusion_stats,
    reset_grid_fusion_stats,
    resolve_jobs,
    run_cells,
    simulate_specs,
)
from repro.sim.sweep import sweep_specs
from repro.sim.vectorized import simulate_fast

from tests.strategies import traces as trace_strategy


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(None) == 1

    def test_env_var_supplies_default(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(None) == 3

    def test_invalid_env_var_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        assert resolve_jobs(None) == 1

    def test_explicit_jobs_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "3")
        assert resolve_jobs(2) == 2

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestRunCells:
    def test_parallel_matches_serial(self, tiny_trace):
        cells = [
            (0, "gshare:128:h4"),
            (0, "gskew:3x64:h4:partial"),
            (0, "gskew:3x64:h4:total"),
            (0, "bimodal:128"),
            (0, "fa:32:h4"),  # generic-engine fallback inside a worker
        ]
        serial = run_cells([tiny_trace], cells, jobs=1)
        parallel = run_cells([tiny_trace], cells, jobs=4)
        assert parallel == serial
        assert [r.predictor for r in parallel] == [spec for _, spec in cells]

    def test_simulate_specs_alignment(self, tiny_trace):
        specs = ["bimodal:64", "gshare:64:h3", "gselect:64:h3"]
        results = simulate_specs(tiny_trace, specs, jobs=2)
        assert [r.predictor for r in results] == specs
        assert all(r.trace == tiny_trace.name for r in results)

    def test_jobs_zero_clamps_to_cpu_count(self, tiny_trace):
        cells = [(0, "bimodal:64"), (0, "gshare:64:h3")]
        assert run_cells([tiny_trace], cells, jobs=0) == run_cells(
            [tiny_trace], cells, jobs=1
        )


class TestFusedGroupDispatch:
    def test_serial_runner_fuses_trace_groups(self, tiny_trace, small_trace):
        """A trace-major cell list dispatches one grid per trace group."""
        reset_grid_fusion_stats()
        specs = ["gshare:128:h4", "gshare:256:h4", "bimodal:128", "fa:16:h3"]
        cells = [(0, s) for s in specs] + [(1, s) for s in specs]
        expected = [
            simulate_fast(
                make_predictor(spec),
                [tiny_trace, small_trace][index],
                label=spec,
            )
            for index, spec in cells
        ]
        assert run_cells([tiny_trace, small_trace], cells, jobs=1) == expected
        stats = grid_fusion_stats()
        assert stats["dispatches"] == 2  # one fused kernel per trace group
        assert stats["fused_cells"] == 6
        assert stats["fallback_cells"] == 2

    def test_alternating_traces_group_contiguously(self, tiny_trace):
        """Grouping splits on trace changes only, preserving cell order."""
        reset_grid_fusion_stats()
        cells = [
            (0, "gshare:128:h4"),
            (1, "gshare:128:h4"),
            (0, "bimodal:128"),
            (0, "gshare:64:h4"),
        ]
        traces = [tiny_trace, tiny_trace]
        expected = [
            simulate_fast(make_predictor(spec), traces[index], label=spec)
            for index, spec in cells
        ]
        assert run_cells(traces, cells, jobs=1) == expected
        # Three groups: [0], [1], [0, 0]; only the last can fuse.
        assert grid_fusion_stats()["dispatches"] <= 1

    def test_grid_failure_recovers_per_cell(self, tiny_trace, monkeypatch):
        """kernel-scan-grid faults degrade to per-cell, byte-identically."""
        cells = [(0, "gshare:128:h4"), (0, "gshare:256:h4")]
        expected = run_cells([tiny_trace], cells, jobs=1)
        monkeypatch.setenv(FAULTS_ENV_VAR, "kernel-scan-grid@1")
        reset_faults()
        with pytest.warns(RuntimeWarning, match="fused grid dispatch"):
            degraded = run_cells([tiny_trace], cells, jobs=1)
        monkeypatch.setenv(FAULTS_ENV_VAR, "")
        reset_faults()
        assert degraded == expected


@pytest.mark.slow
class TestFuzzParallelDispatch:
    # Differential fuzz over the whole dispatch stack: ad-hoc traces
    # (shipped through the pool initializer as literal columns, the
    # non-memoised descriptor path) must produce the same grid under
    # jobs=2 as under the no-pool serial path.  Few examples: each one
    # forks a pool.
    @given(
        trace=trace_strategy(max_length=60),
        specs=st.lists(
            st.sampled_from(
                [
                    "bimodal:16",
                    "gshare:16:h4",
                    "gskew:3x16:h3:total",
                    "gskew:3x16:h3:partial",
                    "fa:16:h3",
                ]
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_jobs2_matches_serial(self, trace, specs):
        cells = [(0, spec) for spec in specs]
        serial = run_cells([trace], cells, jobs=1)
        parallel = run_cells([trace], cells, jobs=2)
        assert parallel == serial


class TestChunking:
    @pytest.mark.parametrize(
        "cells,jobs", [(1, 4), (5, 2), (16, 3), (7, 16), (40, 4)]
    )
    def test_chunks_partition_cells_in_order(self, cells, jobs):
        inputs = [(0, str(i)) for i in range(cells)]
        chunks = _chunk_cells(inputs, jobs)
        assert len(chunks) <= max(1, 2 * jobs)
        assert all(chunks)  # no empty tasks shipped to workers
        assert [cell for chunk in chunks for cell in chunk] == inputs

    def test_chunk_count_bounded_by_workers_not_grid(self):
        chunks = _chunk_cells([(0, str(i)) for i in range(500)], jobs=2)
        assert len(chunks) == 4


class TestOversubscriptionWarning:
    @pytest.fixture(autouse=True)
    def _reset_latch(self, monkeypatch):
        monkeypatch.setattr(
            parallel_module, "_WARNED_OVERSUBSCRIBED", False
        )

    def test_warns_once_when_jobs_exceed_cpus(self, tiny_trace):
        jobs = (os.cpu_count() or 1) + 1
        cells = [(0, "bimodal:64"), (0, "gshare:64:h3")]
        with pytest.warns(RuntimeWarning, match="exceeds"):
            run_cells([tiny_trace], cells, jobs=jobs)
        # The latch suppresses repeats for the rest of the process.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_cells([tiny_trace], cells, jobs=jobs)

    def test_serial_run_never_warns(self, tiny_trace):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            run_cells([tiny_trace], [(0, "bimodal:64")], jobs=1)


class TestParallelSweeps:
    @pytest.fixture(scope="class")
    def series(self):
        return {
            "gshare": ["gshare:64:h3", "gshare:256:h3"],
            "gskew": ["gskew:3x64:h3:partial", "gskew:3x256:h3:partial"],
        }

    def test_grids_identical_to_serial(self, tiny_trace, small_trace, series):
        traces = [tiny_trace, small_trace]
        serial = sweep_specs(traces, series, points=[64, 256], jobs=1)
        parallel = sweep_specs(traces, series, points=[64, 256], jobs=4)
        assert parallel.points == serial.points
        assert parallel.series == serial.series

    def test_env_var_reaches_sweeps(self, tiny_trace, series, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "2")
        by_env = sweep_specs([tiny_trace], series, points=[64, 256])
        monkeypatch.delenv(JOBS_ENV_VAR)
        serial = sweep_specs([tiny_trace], series, points=[64, 256])
        assert by_env.series == serial.series
