"""Tests for per-branch misprediction profiling and stage timing."""

import pytest

from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.static import AlwaysTakenPredictor
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.profile import (
    NULL_STAGE_TIMER,
    StageTimer,
    profile_mispredictions,
)
from repro.traces.trace import BranchRecord, Trace


def _trace():
    records = []
    # 0x100: always taken (never missed by always-taken).
    # 0x104: always not-taken (always missed by always-taken).
    for __ in range(20):
        records.append(BranchRecord(pc=0x100, taken=True))
        records.append(BranchRecord(pc=0x104, taken=False))
    return Trace.from_records(records, name="profiled")


class TestProfile:
    def test_attribution(self):
        result = profile_mispredictions(AlwaysTakenPredictor(), _trace())
        assert result.total_branches == 40
        assert result.total_mispredictions == 20
        top = result.profiles[0]
        assert top.pc == 0x104
        assert top.mispredictions == 20
        assert top.miss_rate == 1.0
        assert top.taken_ratio == 0.0

    def test_sorted_by_misses(self):
        result = profile_mispredictions(AlwaysTakenPredictor(), _trace())
        misses = [p.mispredictions for p in result.profiles]
        assert misses == sorted(misses, reverse=True)

    def test_concentration(self):
        result = profile_mispredictions(AlwaysTakenPredictor(), _trace())
        assert result.concentration(1) == 1.0  # one branch owns all misses
        assert result.concentration(0) == 0.0

    def test_totals_match_engine(self, small_trace):
        profiled = profile_mispredictions(BimodalPredictor(8), small_trace)
        direct = simulate(BimodalPredictor(8), small_trace)
        assert profiled.total_branches == direct.conditional_branches
        assert profiled.total_mispredictions == direct.mispredictions
        assert profiled.misprediction_ratio == pytest.approx(
            direct.misprediction_ratio
        )
        assert (
            sum(p.mispredictions for p in profiled.profiles)
            == direct.mispredictions
        )

    def test_every_static_branch_profiled(self, tiny_trace):
        result = profile_mispredictions(BimodalPredictor(8), tiny_trace)
        assert len(result.profiles) == tiny_trace.static_conditional_count

    def test_empty_trace(self):
        empty = Trace.from_columns([], [], [])
        result = profile_mispredictions(AlwaysTakenPredictor(), empty)
        assert result.misprediction_ratio == 0.0
        assert result.profiles == []

class TestStageTimer:
    def test_accumulates_across_entries(self):
        timer = StageTimer()
        with timer.stage("scan"):
            pass
        first = timer.totals["scan"]
        with timer.stage("scan"):
            pass
        assert timer.totals["scan"] >= first
        assert set(timer.totals) == {"scan"}

    def test_exception_still_recorded(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("reduce"):
                raise RuntimeError("boom")
        assert "reduce" in timer.totals

    def test_reset_and_as_dict(self):
        timer = StageTimer()
        with timer.stage("argsort"):
            pass
        rounded = timer.as_dict(digits=3)
        assert set(rounded) == {"argsort"}
        assert rounded["argsort"] == round(timer.totals["argsort"], 3)
        timer.reset()
        assert timer.totals == {}

    def test_null_timer_records_nothing(self):
        with NULL_STAGE_TIMER.stage("scan"):
            pass
        assert NULL_STAGE_TIMER.totals == {}

    @pytest.mark.parametrize(
        "engine", ["scan", "vectorized"], ids=["scan", "vectorized"]
    )
    def test_engines_populate_pipeline_stages(self, engine, tiny_trace):
        from repro.sim.scan import simulate_scan
        from repro.sim.vectorized import simulate_vectorized

        run = simulate_scan if engine == "scan" else simulate_vectorized
        timer = StageTimer()
        run(
            make_predictor("gskew:3x128:h5:total"),
            tiny_trace,
            stage_timer=timer,
        )
        if engine == "scan":
            assert {"precompute", "argsort", "scan", "reduce"} <= set(
                timer.totals
            )
        else:
            assert {"precompute", "counter_loop"} <= set(timer.totals)
        assert all(seconds >= 0.0 for seconds in timer.totals.values())


class TestProfileCli:
    def test_cli_profile(self, tmp_path, capsys):
        from repro.traces.cli import main
        from repro.traces.io import save_trace

        path = tmp_path / "p.npz"
        save_trace(_trace(), path)
        capsys.readouterr()
        assert main(["profile", str(path), "taken", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "0x104" in out
        assert "mispredictions" in out
