"""Equivalence tests: the scan engine vs the generic engine.

The scan engine replaces the per-branch counter loop with run-length
grouping and clamped-add map composition; its correctness argument is
bit-identity with ``repro.sim.engine.simulate`` — same SimulationResult,
same final counter values, same agree-bias bits, same final history
register — across every always-update spec family it claims, plus a
hypothesis property pinning the standalone ``counter_scan`` kernel to a
scalar saturating-counter oracle (including the wide-counter re-clamped
Hillis–Steele branch) and one over randomly generated traces.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.scan import counter_scan, scan_supports, simulate_scan
from repro.sim.vectorized import simulate_fast
from repro.traces.trace import Trace

from tests.strategies import traces as trace_strategy

#: Every spec family the scan engine claims, including degenerate
#: geometries (one-entry tables, h=0 (PC-indexed), history folding
#: (h > index bits), 1-bit counters) and the coupled paths: multi-bank
#: PARTIAL rides the vote-wrongness fixpoint kernel, single-bank LAZY
#: the map-code scan.
SCAN_SPECS = [
    "bimodal:256",
    "bimodal:256:c1",
    "gshare:256:h4",
    "gshare:256:h8",  # history == index bits (pure XOR)
    "gshare:64:h10",  # history > index bits (XOR folding)
    "gshare:256:h0",  # degenerate: PC-indexed
    "gshare:1:h4",  # degenerate: one entry (index bits = 0)
    "gshare:256:h4:c1",
    "gselect:256:h4",
    "gselect:1:h4",  # degenerate: one entry
    "gselect:256:h6:c1",
    "gskew:1x256:h6:partial",  # single bank: PARTIAL == always-update
    "gskew:1x256:h6:total",
    "gskew:1x256:h6:lazy",  # train-on-miss: map-code scan
    "gskew:1x256:h6:lazy:c1",
    "gskew:3x256:h6:total",
    "gskew:3x256:h6:total:c1",
    "gskew:3x1k:h6:partial",  # coupled: vote-wrongness fixpoint
    "gskew:3x1k:h6:partial:c1",
    "gskew:5x128:h6:total",
    "gskew:5x512:h6:partial",
    "egskew:3x256:h6:total",
    "egskew:3x1k:h6:partial",
    "agree:256:h5",
    "agree:256:h0",
]

#: Index-expressible specs with no scan path: multi-bank LAZY freezes
#: its counters on every correct vote, so fixpoint perturbations never
#: wash out (see the scan module docstring), dense multi-bank PARTIAL
#: (> _MAX_PARTIAL_DENSITY events/entry — 3x16 banks on the ~3k-event
#: tiny trace) iterates its fixpoint slower than the sequential loop,
#: and fa/unaliased have no closed-form index streams at all.
NO_SCAN_SPECS = [
    "gskew:3x256:h6:lazy",
    "egskew:3x256:h6:lazy",
    "gskew:3x16:h4:partial",
    "fa:64:h4",
    "unaliased:h6",
]


def _full_state(predictor):
    """Snapshot all mutable predictor state (counters, bias, history)."""
    if hasattr(predictor, "banks"):
        counters = [list(bank.counters.values) for bank in predictor.banks]
    elif hasattr(predictor, "bank"):
        counters = [list(predictor.bank.counters.values)]
    else:  # agree: PHT + bias latches
        counters = [list(predictor.pht.counters.values), list(predictor._bias)]
    history = getattr(predictor, "history", None)
    return counters, None if history is None else history.value


class TestEquivalence:
    @pytest.mark.parametrize("spec", SCAN_SPECS)
    def test_identical_to_generic_engine(self, spec, small_trace):
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        assert scan_supports(candidate, small_trace), spec

        expected = simulate(reference, small_trace, label=spec)
        actual = simulate_scan(candidate, small_trace, label=spec)

        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)

    @pytest.mark.parametrize(
        "spec", ["gshare:128:h6", "gskew:3x128:h5:total", "agree:128:h5"]
    )
    @pytest.mark.parametrize("warmup", [1, 137, 10**9])
    def test_warmup_equivalence(self, spec, warmup, tiny_trace):
        expected = simulate(make_predictor(spec), tiny_trace, warmup=warmup)
        actual = simulate_scan(make_predictor(spec), tiny_trace, warmup=warmup)
        assert actual == expected

    @pytest.mark.parametrize("warmup", [0, 137])
    def test_wide_geometry_fallback(self, warmup, tiny_trace):
        # A 1M-entry gshare needs 20 key bits; with the trace's ~4k
        # events the packed-word layout would need 33 bits, so this
        # exercises the permutation-grouping fallback path.
        spec = "gshare:1M:h8"
        reference = make_predictor(spec)
        candidate = make_predictor(spec)
        expected = simulate(reference, tiny_trace, warmup=warmup)
        actual = simulate_scan(candidate, tiny_trace, warmup=warmup)
        assert actual == expected
        assert _full_state(candidate) == _full_state(reference)


#: Hand-built corner traces: empty, single event, a run of two, pure
#: bias, strict alternation, and an unconditional-only stream.
DEGENERATE_TRACES = {
    "empty": ([], []),
    "one-taken": ([0x40], [1]),
    "one-not-taken": ([0x40], [0]),
    "two-same-slot": ([0x40, 0x40], [1, 0]),
    "all-taken": ([0x40, 0x44, 0x40, 0x44, 0x40], [1, 1, 1, 1, 1]),
    "alternating": ([0x40] * 8, [1, 0, 1, 0, 1, 0, 1, 0]),
}


class TestDegenerateTraces:
    @pytest.mark.parametrize("name", sorted(DEGENERATE_TRACES))
    @pytest.mark.parametrize(
        "spec", ["bimodal:4", "gshare:8:h3", "gskew:3x8:h3:total", "agree:8:h3"]
    )
    def test_matches_generic_engine(self, name, spec):
        pcs, takens = DEGENERATE_TRACES[name]
        trace = Trace.from_columns(
            pcs, takens, [1] * len(pcs), name=f"degenerate-{name}"
        )
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_scan(make_predictor(spec), trace)
        assert actual == expected

    def test_unconditionals_only(self):
        trace = Trace.from_columns([0x40, 0x44], [1, 1], [0, 0])
        spec = "gshare:8:h3"
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_scan(make_predictor(spec), trace)
        assert actual == expected
        assert actual.conditional_branches == 0


class TestDispatch:
    @pytest.mark.parametrize("spec", NO_SCAN_SPECS)
    def test_unscannable_predictors_are_rejected(self, spec, tiny_trace):
        predictor = make_predictor(spec)
        assert not scan_supports(predictor, tiny_trace)
        with pytest.raises(ValueError, match="no scan path"):
            simulate_scan(predictor, tiny_trace)

    def test_negative_warmup_rejected(self, tiny_trace):
        with pytest.raises(ValueError, match="warmup"):
            simulate_scan(make_predictor("bimodal:64"), tiny_trace, warmup=-1)

    def test_simulate_fast_routes_always_update_to_scan(
        self, tiny_trace, monkeypatch
    ):
        import repro.sim.scan as scan_module

        # The native C tier would take this spec first; disable it so
        # the test pins the scan tier's position in the ladder.
        monkeypatch.setenv("REPRO_NATIVE", "0")
        calls = []
        inner = scan_module.simulate_scan

        def spy(predictor, trace, **kwargs):
            calls.append(type(predictor).__name__)
            return inner(predictor, trace, **kwargs)

        monkeypatch.setattr(scan_module, "simulate_scan", spy)
        expected = simulate(make_predictor("gskew:3x128:h5:total"), tiny_trace)
        actual = simulate_fast(make_predictor("gskew:3x128:h5:total"), tiny_trace)
        assert actual == expected
        assert calls == ["SkewedPredictor"]

    def test_simulate_fast_routes_partial_to_scan(
        self, tiny_trace, monkeypatch
    ):
        import repro.sim.scan as scan_module

        # PARTIAL below the density ceiling now goes native first;
        # disable it so the test pins scan as the next rung.
        monkeypatch.setenv("REPRO_NATIVE", "0")
        calls = []
        inner = scan_module.simulate_scan

        def spy(predictor, trace, **kwargs):
            calls.append(type(predictor).__name__)
            return inner(predictor, trace, **kwargs)

        monkeypatch.setattr(scan_module, "simulate_scan", spy)
        spec = "gskew:3x128:h5:partial"
        expected = simulate(make_predictor(spec), tiny_trace)
        actual = simulate_fast(make_predictor(spec), tiny_trace)
        assert actual == expected
        assert calls == ["SkewedPredictor"]

    def test_simulate_fast_keeps_lazy_multibank_off_the_scan(
        self, tiny_trace, monkeypatch
    ):
        import repro.sim.scan as scan_module

        def forbidden(*args, **kwargs):  # pragma: no cover — would fail
            raise AssertionError("coupled spec dispatched to the scan engine")

        monkeypatch.setattr(scan_module, "simulate_scan", forbidden)
        spec = "gskew:3x128:h5:lazy"
        expected = simulate(make_predictor(spec), tiny_trace)
        actual = simulate_fast(make_predictor(spec), tiny_trace)
        assert actual == expected


def _reference_counter_loop(keys, outcomes, init_values, threshold, vmax):
    """Scalar oracle: the per-event loop ``counter_scan`` replaces."""
    values = list(init_values)
    predictions = np.empty(len(keys), dtype=bool)
    for event, (key, taken) in enumerate(zip(keys, outcomes)):
        value = values[key]
        predictions[event] = value >= threshold
        if taken:
            if value < vmax:
                values[key] = value + 1
        elif value > 0:
            values[key] = value - 1
    return predictions, np.array(values, dtype=np.int64)


class TestCounterScanKernel:
    def test_empty_input(self):
        predictions, finals = counter_scan([], [], [0, 3], threshold=2, max_value=3)
        assert predictions.tolist() == []
        assert finals.tolist() == [0, 3]

    def test_saturation_both_ends(self):
        keys = [0] * 6 + [1] * 6
        outcomes = [True] * 6 + [False] * 6
        predictions, finals = counter_scan(
            keys, outcomes, [0, 3], threshold=2, max_value=3
        )
        expected, expected_finals = _reference_counter_loop(
            keys, outcomes, [0, 3], 2, 3
        )
        assert predictions.tolist() == expected.tolist()
        assert finals.tolist() == expected_finals.tolist() == [3, 0]

    # The composite strategy draws few distinct keys so runs get long
    # (exercising absorbing runs and multi-level composition) and
    # includes 13-bit counters, where the Hillis–Steele sweep must take
    # the re-clamped fallback once the doubling depth could overflow
    # the unclamped int16 displacement bound.
    @given(
        data=st.data(),
        table_size=st.integers(1, 6),
        max_value=st.sampled_from([1, 3, 7, (1 << 13) - 1]),
        length=st.integers(0, 160),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_scalar_oracle(self, data, table_size, max_value, length):
        threshold = data.draw(st.integers(1, max_value), label="threshold")
        keys = data.draw(
            st.lists(
                st.integers(0, table_size - 1),
                min_size=length,
                max_size=length,
            ),
            label="keys",
        )
        outcomes = data.draw(
            st.lists(st.booleans(), min_size=length, max_size=length),
            label="outcomes",
        )
        init = data.draw(
            st.lists(
                st.integers(0, max_value),
                min_size=table_size,
                max_size=table_size,
            ),
            label="init",
        )
        predictions, finals = counter_scan(
            keys, outcomes, init, threshold, max_value
        )
        expected, expected_finals = _reference_counter_loop(
            keys, outcomes, init, threshold, max_value
        )
        assert predictions.tolist() == expected.tolist()
        assert finals.tolist() == expected_finals.tolist()

    @given(
        spec=st.sampled_from(
            [
                "bimodal:8",
                "gshare:16:h4",
                "gselect:16:h3",
                "gskew:3x16:h3:total",
                "agree:16:h3",
            ]
        ),
        trace=trace_strategy(),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_traces_match_generic_engine(self, spec, trace):
        expected = simulate(make_predictor(spec), trace)
        actual = simulate_scan(make_predictor(spec), trace)
        assert actual == expected
