"""Tests for the pipeline cost model."""

import pytest

from repro.sim.cost import CostEstimate, PipelineModel, speedup
from repro.sim.metrics import SimulationResult


def _result(ratio, name="p"):
    branches = 10_000
    return SimulationResult(
        predictor=name,
        trace="t",
        conditional_branches=branches,
        mispredictions=int(ratio * branches),
        storage_bits=1024,
    )


class TestPipelineModel:
    def test_perfect_prediction_is_base_cpi(self):
        model = PipelineModel(base_cpi=0.5)
        assert model.cpi(0.0) == pytest.approx(0.5)
        assert model.ipc(0.0) == pytest.approx(2.0)

    def test_cpi_linear_in_misprediction(self):
        model = PipelineModel(
            base_cpi=0.5, misprediction_penalty=10.0, branch_frequency=0.2
        )
        assert model.cpi(0.05) == pytest.approx(0.5 + 0.2 * 0.05 * 10.0)
        # Doubling the ratio doubles the branch term.
        assert model.cpi(0.10) - 0.5 == pytest.approx(
            2 * (model.cpi(0.05) - 0.5)
        )

    def test_estimate_fields(self):
        model = PipelineModel()
        estimate = model.estimate(_result(0.05))
        assert isinstance(estimate, CostEstimate)
        assert estimate.misprediction_ratio == pytest.approx(0.05)
        assert estimate.cpi == pytest.approx(model.cpi(0.05))
        assert 0.0 < estimate.branch_penalty_share < 1.0
        assert "IPC" in str(estimate)

    def test_zero_penalty_machine_is_insensitive(self):
        model = PipelineModel(misprediction_penalty=0.0)
        assert model.cpi(0.0) == model.cpi(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            PipelineModel(base_cpi=0.0)
        with pytest.raises(ValueError):
            PipelineModel(misprediction_penalty=-1)
        with pytest.raises(ValueError):
            PipelineModel(branch_frequency=0.0)
        with pytest.raises(ValueError):
            PipelineModel().cpi(1.5)


class TestSpeedup:
    def test_better_predictor_faster(self):
        assert speedup(_result(0.04), _result(0.06)) > 1.0

    def test_equal_rates_no_speedup(self):
        assert speedup(_result(0.05), _result(0.05)) == pytest.approx(1.0)

    def test_deeper_pipeline_amplifies(self):
        shallow = PipelineModel(misprediction_penalty=5.0)
        deep = PipelineModel(misprediction_penalty=25.0)
        better, baseline = _result(0.04), _result(0.06)
        assert speedup(better, baseline, deep) > speedup(
            better, baseline, shallow
        )

    def test_magnitude_plausible(self):
        """A 2% absolute misprediction gap on a 12-cycle machine is a
        few percent of end performance — the stakes the paper opens
        with."""
        gain = speedup(_result(0.04), _result(0.06))
        assert 1.01 < gain < 1.15
