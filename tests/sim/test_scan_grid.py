"""Equivalence tests: the fused sweep-grid engine vs per-cell runs.

The fused grid engine's correctness argument is bit-identity with
per-cell ``simulate_fast``: same ``SimulationResult`` rows, same final
counter values, same final history registers, for *any* spec mix —
fusable cells (every bucket kind: ``add``, ``lazy1``, ``partial``, the
wide-word split, the pack cache) and fallback cells (agree, fa,
multi-bank LAZY, dense PARTIAL) alike.  A hypothesis differential pins
the fused PARTIAL fixpoint to the generic scalar engine on random
traces, and the degraded paths (fixpoint round-cap bailout, the
large-trace fusion gate) are forced and must stay byte-identical too.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.sim.scan_grid as scan_grid_module
from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.native import native_available
from repro.sim.profile import StageTimer
from repro.sim.scan_grid import (
    GridStats,
    grid_supports,
    simulate_grid,
    simulate_spec_grid,
)
from repro.sim.vectorized import simulate_fast

from tests.strategies import traces as trace_strategy

#: A deliberately mixed grid: every fusion bucket (always-update
#: families at several widths, single-bank LAZY, multi-bank PARTIAL
#: with 3- and 5-bank majorities, a wide-word cell, duplicate specs for
#: the pack cache) plus every fallback class (agree, fa, multi-bank
#: LAZY, dense PARTIAL, singleton buckets).
GRID_SPECS = [
    "bimodal:256",
    "bimodal:64:c3",
    "gshare:1k:h8",
    "gshare:256:h4:c1",
    "gshare:1k:h8",  # duplicate spec: sorted blocks come from the cache
    "gselect:256:h4",
    "gskew:1x256:h5",
    "gskew:1x128:h4:lazy",
    "gskew:1x64:h4:lazy",
    "gskew:3x256:h6:total",
    "gskew:3x512:h6:partial",
    "gskew:3x1k:h6:partial",
    "gskew:5x512:h6:partial",
    "gskew:5x128:h5:total",
    "egskew:3x512:h6:partial",
    "egskew:3x256:h6:total",
    "gshare:1m:h8",  # 20 entry bits: the uint64 (wide) bucket
    "gskew:3x8:h3:partial",  # dense PARTIAL: gated to per-cell fallback
    "gskew:3x64:h4:lazy",  # multi-bank LAZY: no scan path at all
    "agree:256:h5",
    "fa:64:h4",
]


def _full_state(predictor):
    """Snapshot all mutable predictor state (counters, bias, history)."""
    if hasattr(predictor, "banks"):
        counters = [list(bank.counters.values) for bank in predictor.banks]
    elif hasattr(predictor, "bank"):
        counters = [list(predictor.bank.counters.values)]
    else:
        counters = None
    history = getattr(predictor, "history", None)
    return counters, None if history is None else history.value


def _per_cell(specs, trace, warmup=0):
    predictors = [make_predictor(spec) for spec in specs]
    results = [
        simulate_fast(p, trace, warmup=warmup, label=s)
        for p, s in zip(predictors, specs)
    ]
    return results, [_full_state(p) for p in predictors]


class TestGridEquivalence:
    @pytest.mark.parametrize("warmup", [0, 137, 10**9])
    def test_mixed_grid_bit_identical(self, small_trace, warmup):
        expected, expected_states = _per_cell(
            GRID_SPECS, small_trace, warmup
        )
        predictors = [make_predictor(spec) for spec in GRID_SPECS]
        stats = GridStats()
        results = simulate_grid(
            predictors,
            small_trace,
            warmup=warmup,
            labels=list(GRID_SPECS),
            stats=stats,
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == expected_states
        # The mix must actually exercise fusion, not fall back wholesale.
        assert stats.fused_cells >= 12
        assert stats.fallback_cells >= 4
        assert stats.dispatches >= 3
        assert stats.fused_cells_per_dispatch > 1

    def test_spec_grid_matches_and_aligns(self, tiny_trace):
        specs = ["gshare:256:h6", "gshare:128:h6", "bimodal:64", "fa:16:h3"]
        expected, _ = _per_cell(specs, tiny_trace)
        timer = StageTimer()
        results = simulate_spec_grid(tiny_trace, specs, stage_timer=timer)
        assert results == expected
        assert [r.predictor for r in results] == specs
        assert timer.as_dict()  # the fused path reported its stages

    def test_empty_trace_grid(self):
        from repro.traces.trace import Trace

        empty = Trace.from_columns([], [], [], name="empty")
        results = simulate_spec_grid(empty, ["gshare:64:h4", "bimodal:32"])
        assert [r.mispredictions for r in results] == [0, 0]

    def test_validation(self, tiny_trace):
        predictors = [make_predictor("gshare:64:h4")]
        with pytest.raises(ValueError, match="warmup"):
            simulate_grid(predictors, tiny_trace, warmup=-1)
        with pytest.raises(ValueError, match="labels"):
            simulate_grid(predictors, tiny_trace, labels=["a", "b"])


class TestGridSupports:
    def test_fusable_specs(self, tiny_trace):
        for spec in ("gshare:256:h6", "gskew:3x128:h5:partial",
                     "gskew:1x64:h4:lazy"):
            assert grid_supports(make_predictor(spec), tiny_trace)

    def test_fallback_specs(self, tiny_trace):
        # agree fuses nothing (per-event bias expansion), fa has no
        # index streams, multi-bank LAZY has no scan path, and dense
        # PARTIAL (3x8 banks on thousands of events) is density-gated.
        for spec in ("agree:64:h4", "fa:16:h3", "gskew:3x64:h4:lazy",
                     "gskew:3x8:h3:partial"):
            assert not grid_supports(make_predictor(spec), tiny_trace)


class TestDegradedPaths:
    def test_fixpoint_bailout_recovers_per_cell(
        self, tiny_trace, monkeypatch
    ):
        """A PARTIAL cell that hits the round cap falls back per cell."""
        # The numpy fixpoint's cap is under test; keep the native
        # takeover (with its own round cap) out of the way.
        monkeypatch.setenv("REPRO_NATIVE", "0")
        specs = ["gskew:3x128:h5:partial", "gskew:3x256:h5:partial"]
        expected, expected_states = _per_cell(specs, tiny_trace)
        monkeypatch.setattr(scan_grid_module, "_COUPLED_ROUND_LIMIT", 1)
        predictors = [make_predictor(spec) for spec in specs]
        stats = GridStats()
        results = simulate_grid(
            predictors, tiny_trace, labels=specs, stats=stats
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == expected_states
        assert stats.fixpoint_bailouts == 2
        assert stats.fused_cells == 0

    def test_fusion_gate_keeps_large_grids_identical(
        self, tiny_trace, monkeypatch
    ):
        """Above the cache crossover, add/lazy1 buckets run per cell.

        The gate is a *numpy*-fusion concern, so the native backend —
        which lifts it — is pinned off for this test.
        """
        monkeypatch.setenv("REPRO_NATIVE", "0")
        specs = ["gshare:256:h6", "gshare:128:h6",
                 "gskew:3x128:h5:partial", "gskew:3x256:h5:partial"]
        expected, _ = _per_cell(specs, tiny_trace)
        monkeypatch.setattr(scan_grid_module, "_FUSE_MAX_EVENTS", 0)
        stats = GridStats()
        results = simulate_grid(
            [make_predictor(s) for s in specs],
            tiny_trace,
            labels=specs,
            stats=stats,
        )
        assert results == expected
        # PARTIAL is exempt from the gate (its per-round fixed cost
        # amortises at any length); the add bucket fell back.
        assert stats.fused_cells == 2
        assert stats.fallback_cells == 2


class TestNativeBucket:
    """The compiled C kernel takes whole buckets — all kinds — when built."""

    pytestmark = pytest.mark.skipif(
        not native_available(),
        reason="native backend unavailable; buckets stay on numpy",
    )

    def test_add_bucket_runs_native_and_identical(self, tiny_trace):
        specs = ["gshare:256:h6", "gshare:128:h6", "bimodal:64",
                 "gskew:3x128:h5:total"]
        expected, expected_states = _per_cell(specs, tiny_trace)
        predictors = [make_predictor(s) for s in specs]
        stats = GridStats()
        results = simulate_grid(
            predictors, tiny_trace, labels=specs, stats=stats
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == expected_states
        # One add bucket, one dispatch, every cell through the C kernel.
        assert stats.native_cells == stats.fused_cells == len(specs)
        assert stats.dispatches == 1
        assert all(r.engine == "native" for r in results)

    def test_lazy1_and_partial_buckets_run_native_and_identical(
        self, tiny_trace
    ):
        specs = ["gskew:1x128:h5:lazy", "gskew:1x64:h4:lazy",
                 "gskew:3x128:h5:partial", "gskew:3x256:h5:partial"]
        expected, expected_states = _per_cell(specs, tiny_trace)
        predictors = [make_predictor(s) for s in specs]
        stats = GridStats()
        results = simulate_grid(
            predictors, tiny_trace, labels=specs, stats=stats
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == expected_states
        assert stats.native_cells == len(specs)
        assert all(r.engine == "native" for r in results)

    def test_native_round_cap_bailout_recovers_per_cell(
        self, tiny_trace, monkeypatch
    ):
        """A native PARTIAL cell that hits the C round cap is excluded
        from the writeback and re-runs per cell, bit-identically."""
        import repro.sim.native as native_module

        specs = ["gskew:3x128:h5:partial", "gskew:3x256:h5:partial"]
        expected, expected_states = _per_cell(specs, tiny_trace)
        monkeypatch.setattr(native_module, "_PARTIAL_ROUND_LIMIT", 0)
        predictors = [make_predictor(s) for s in specs]
        stats = GridStats()
        results = simulate_grid(
            predictors, tiny_trace, labels=specs, stats=stats
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == expected_states
        assert stats.fixpoint_bailouts == len(specs)

    def test_native_lifts_the_fusion_gate(self, tiny_trace, monkeypatch):
        """Past _FUSE_MAX_EVENTS the numpy bucket falls back per cell;
        the C kernel has no cache crossover, so it keeps the bucket."""
        monkeypatch.setattr(scan_grid_module, "_FUSE_MAX_EVENTS", 0)
        specs = ["gshare:256:h6", "gshare:128:h6"]
        expected, _ = _per_cell(specs, tiny_trace)
        stats = GridStats()
        results = simulate_grid(
            [make_predictor(s) for s in specs],
            tiny_trace,
            labels=specs,
            stats=stats,
        )
        assert results == expected
        assert stats.native_cells == 2
        assert stats.fallback_cells == 0


class TestForcedEngineInGrid:
    def test_forced_grid_fuses_even_singletons(self, tiny_trace, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "grid")
        spec = "gshare:256:h6"
        expected = simulate(make_predictor(spec), tiny_trace, label=spec)
        stats = GridStats()
        results = simulate_grid(
            [make_predictor(spec)], tiny_trace, labels=[spec], stats=stats
        )
        assert results == [expected]
        # Forcing "grid" pins the numpy fusion: gates are skipped and
        # the native bucket takeover is off.
        assert stats.fused_cells == 1
        assert stats.native_cells == 0
        assert results[0].engine == "grid"

    def test_forced_non_grid_engine_routes_per_cell(
        self, tiny_trace, monkeypatch
    ):
        monkeypatch.setenv("REPRO_ENGINE", "scan")
        specs = ["gshare:256:h6", "gshare:128:h6", "bimodal:64"]
        stats = GridStats()
        results = simulate_grid(
            [make_predictor(s) for s in specs],
            tiny_trace,
            labels=specs,
            stats=stats,
        )
        monkeypatch.delenv("REPRO_ENGINE")
        expected, _ = _per_cell(specs, tiny_trace)
        assert results == expected
        assert stats.fused_cells == 0
        assert stats.fallback_cells == len(specs)
        assert all(r.engine == "scan" for r in results)


class TestGridStats:
    def test_dispatch_ratio_and_dict_shape(self):
        stats = GridStats(fused_cells=6, fallback_cells=1, dispatches=2)
        assert stats.fused_cells_per_dispatch == 3.0
        assert stats.as_dict() == {
            "fused_cells": 6,
            "fallback_cells": 1,
            "dispatches": 2,
            "fixpoint_bailouts": 0,
            "native_cells": 0,
            "fused_cells_per_dispatch": 3.0,
        }

    def test_zero_dispatches(self):
        assert GridStats().fused_cells_per_dispatch == 0.0


class TestFusedPartialFuzz:
    """Differential fuzz of the fused PARTIAL fixpoint vs the scalar
    oracle (the generic interpreter), through a genuine multi-config
    bucket so the per-config drop-out and flat vote recount run."""

    @given(
        specs=st.sets(
            st.sampled_from(
                [
                    "gskew:3x16:h3:partial",
                    "gskew:3x32:h4:partial",
                    "gskew:3x16:h4:partial:c1",
                    "gskew:5x16:h3:partial",
                    "egskew:3x32:h4:partial",
                ]
            ),
            min_size=2,
            max_size=4,
        ).map(sorted),
        trace=trace_strategy(),
        warmup=st.integers(0, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_generic_engine(self, specs, trace, warmup):
        expected = [
            simulate(make_predictor(s), trace, warmup=warmup, label=s)
            for s in specs
        ]
        oracle_states = []
        for spec in specs:
            predictor = make_predictor(spec)
            simulate(predictor, trace, warmup=warmup, label=spec)
            oracle_states.append(_full_state(predictor))
        predictors = [make_predictor(s) for s in specs]
        results = simulate_grid(
            predictors, trace, warmup=warmup, labels=list(specs)
        )
        assert results == expected
        assert [_full_state(p) for p in predictors] == oracle_states
