"""Tests for the predictor spec-string factory."""

import pytest

from repro.core.egskew import EnhancedSkewedPredictor
from repro.core.gskew import SkewedPredictor
from repro.core.update import UpdatePolicy
from repro.predictors.associative import FullyAssociativePredictor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gselect import GselectPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.hybrid import HybridPredictor
from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
)
from repro.predictors.two_level import PAsPredictor
from repro.predictors.unaliased import UnaliasedPredictor
from repro.sim.config import format_entries, make_predictor, parse_size


class TestParseSize:
    def test_plain_and_suffixed(self):
        assert parse_size("64") == 64
        assert parse_size("4k") == 4096
        assert parse_size("16K") == 16384
        assert parse_size("1m") == 1 << 20

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            parse_size("100")
        with pytest.raises(ValueError):
            parse_size("3k")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_size("")
        with pytest.raises(ValueError):
            parse_size("kk")
        with pytest.raises(ValueError):
            parse_size("-4")

    def test_format_entries_roundtrip(self):
        for entries in (64, 512, 1024, 4096, 1 << 20, 3 * 256):
            if entries & (entries - 1) == 0:
                assert parse_size(format_entries(entries)) == entries

    def test_format_entries_paper_notation(self):
        assert format_entries(4096) == "4k"
        assert format_entries(1 << 20) == "1m"
        assert format_entries(96) == "96"


class TestMakePredictor:
    def test_gshare(self):
        predictor = make_predictor("gshare:16k:h12")
        assert isinstance(predictor, GsharePredictor)
        assert predictor.entries == 16384
        assert predictor.history_bits == 12
        assert predictor.counter_bits == 2

    def test_gselect_with_counter_bits(self):
        predictor = make_predictor("gselect:4k:h4:c1")
        assert isinstance(predictor, GselectPredictor)
        assert predictor.counter_bits == 1

    def test_bimodal(self):
        predictor = make_predictor("bimodal:2k")
        assert isinstance(predictor, BimodalPredictor)
        assert predictor.entries == 2048

    def test_gskew_geometry_and_policy(self):
        predictor = make_predictor("gskew:3x4k:h12:partial")
        assert isinstance(predictor, SkewedPredictor)
        assert len(predictor.banks) == 3
        assert predictor.banks[0].entries == 4096
        assert predictor.update_policy is UpdatePolicy.PARTIAL

    def test_gskew_default_policy_is_partial(self):
        assert (
            make_predictor("gskew:3x1k:h4").update_policy
            is UpdatePolicy.PARTIAL
        )

    def test_gskew_five_banks(self):
        predictor = make_predictor("gskew:5x256:h4:total")
        assert len(predictor.banks) == 5
        assert predictor.update_policy is UpdatePolicy.TOTAL

    def test_egskew(self):
        predictor = make_predictor("egskew:3x4k:h12")
        assert isinstance(predictor, EnhancedSkewedPredictor)

    def test_egskew_rejects_non_three_banks(self):
        with pytest.raises(ValueError):
            make_predictor("egskew:5x1k:h4")

    def test_fa(self):
        predictor = make_predictor("fa:1k:h4")
        assert isinstance(predictor, FullyAssociativePredictor)
        assert predictor.entries == 1024

    def test_unaliased(self):
        predictor = make_predictor("unaliased:h12:c1")
        assert isinstance(predictor, UnaliasedPredictor)
        assert predictor.counter_bits == 1

    def test_hybrid(self):
        predictor = make_predictor("hybrid:4k:h10")
        assert isinstance(predictor, HybridPredictor)

    def test_pas(self):
        predictor = make_predictor("pas:1k/h6:16k")
        assert isinstance(predictor, PAsPredictor)
        assert predictor.history_bits == 6

    def test_static(self):
        assert isinstance(make_predictor("taken"), AlwaysTakenPredictor)
        assert isinstance(
            make_predictor("nottaken"), AlwaysNotTakenPredictor
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "",
            "unknown:4k",
            "gshare",  # missing size
            "gshare:4k",  # missing history
            "gskew:4k:h4",  # missing geometry
            "gshare:4k:h4:x9",  # unknown field
            "taken:4k",  # static takes no params
            "pas:1k:16k",  # missing /h
            "pas:1k/h6",  # missing counter table
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            make_predictor(spec)
