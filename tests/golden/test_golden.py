"""Golden regression suite: pinned misprediction counts per workload.

The differential suites prove the engines agree with *each other*; this
suite pins them to *checked-in numbers*, so any drift in the trace
substrate (generator, scheduler, behaviour models), the predictors or
any engine tier shows up as a diff against ``golden_rates.json`` —
including drift that moves all tiers in lockstep, which no equivalence
test can see.

Each of the six IBS-named workloads runs at a small scale through every
engine tier (generic interpreter, vectorized loop, transition scan,
fused sweep-grid, native C kernel) for a spec family every tier can
express.  Counts are exact integers — the engines are deterministic and
bit-identical, so the comparison is equality, not a tolerance.  The
native tier is optional by design: its rows skip with an explicit
reason when the backend cannot build (no C compiler or cffi,
``REPRO_NATIVE=0``) or the spec has no native path, so the suite stays
green on compiler-less machines while still pinning the C kernel
wherever it exists.

After an *intentional* change to traces or predictors, refresh with::

    pytest tests/golden --update-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.native import native_available, native_supports, simulate_native
from repro.sim.scan import simulate_scan
from repro.sim.scan_grid import simulate_grid
from repro.sim.vectorized import simulate_vectorized
from repro.traces.synthetic.workloads import IBS_BENCHMARKS, ibs_trace

GOLDEN_PATH = Path(__file__).parent / "golden_rates.json"

#: Small enough to keep 6 workloads x 5 specs x 5 tiers cheap, large
#: enough that every workload has thousands of conditional branches.
GOLDEN_SCALE = 0.05

#: One spec per engine-relevant family, all expressible by every tier
#: (always-update, default skew family, the PARTIAL vote-wrongness
#: fixpoint, the single-bank LAZY train-on-miss walk, in-range
#: geometry).
GOLDEN_SPECS = [
    "bimodal:512",
    "gshare:512:h8",
    "gskew:3x256:h6:total",
    "gskew:3x256:h6:partial",
    "gskew:1x256:h6:lazy",
]

#: The serving tier's pinned replay: three tenants (one per workload)
#: interleaved through one server, far-from-aligned chunk/batch sizes so
#: flush boundaries fall mid-stream everywhere.
SERVING_WORKLOADS = ("groff", "gs", "mpeg_play")
SERVING_SPEC = "gshare:512:h8"
SERVING_CHUNK = 97
SERVING_BATCH = 128


def _measure_serving() -> dict:
    """Per-tenant counts from the 3-tenant interleaved replay."""
    from repro.serving.server import PredictionService

    service = PredictionService(shards=2, batch_size=SERVING_BATCH)
    sessions = {
        workload: ibs_trace(workload, GOLDEN_SCALE)
        for workload in SERVING_WORKLOADS
    }
    for workload in sessions:
        service.handle(
            {"op": "open", "session": workload, "spec": SERVING_SPEC}
        )
    cursors = {workload: 0 for workload in sessions}
    while any(cursors[w] < len(t) for w, t in sessions.items()):
        for workload, trace in sessions.items():
            lo = cursors[workload]
            if lo >= len(trace):
                continue
            hi = min(lo + SERVING_CHUNK, len(trace))
            events = [
                [int(trace.pcs[i]), int(trace.takens[i]),
                 int(trace.conditionals[i])]
                for i in range(lo, hi)
            ]
            cursors[workload] = hi
            response = service.handle(
                {"op": "events", "session": workload, "events": events}
            )
            assert response["ok"], response
    out = {}
    for workload in sessions:
        stats = service.handle({"op": "close", "session": workload})
        assert stats["ok"], stats
        out[workload] = {
            "branches": stats["conditional_branches"],
            "misses": stats["mispredictions"],
        }
    return out


def _simulate_grid_pair(predictor, trace, label):
    """The fused sweep-grid tier, forced through a real fused bucket.

    A single-cell grid would fall back per cell (nothing to amortise),
    so the golden row runs the spec as a two-member bucket — the fused
    kernels with the pack cache engaged — and pins both members to the
    same numbers.
    """
    twin = make_predictor(label)
    first, second = simulate_grid(
        [predictor, twin], trace, labels=[label, label]
    )
    assert first == second
    return first


def _simulate_native_checked(predictor, trace, label):
    """The native C tier, skipping where it cannot run.

    The backend is optional (compiled on demand); a machine without a
    C toolchain must stay green.  Every golden spec — including the
    PARTIAL fixpoint and single-bank LAZY — has a native path at
    golden scale, so on a compiler-equipped machine only backend
    unavailability skips.
    """
    if not native_available():
        pytest.skip(
            "native backend unavailable (no C compiler, no cffi, or "
            "REPRO_NATIVE=0); the scan tier pins these numbers instead"
        )
    if not native_supports(predictor, trace):
        pytest.skip(f"{label}: no native path at this geometry")
    return simulate_native(predictor, trace, label=label)


ENGINES = {
    "generic": simulate,
    "vectorized": simulate_vectorized,
    "scan": simulate_scan,
    "grid": _simulate_grid_pair,
    "native": _simulate_native_checked,
}


def _measure(workload: str, spec: str, engine) -> dict:
    trace = ibs_trace(workload, GOLDEN_SCALE)
    result = engine(make_predictor(spec), trace, label=spec)
    return {
        "branches": result.conditional_branches,
        "misses": result.mispredictions,
    }


def _load_golden() -> dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"{GOLDEN_PATH} missing; generate it with "
            "`pytest tests/golden --update-golden`"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_update_golden(request):
    """With ``--update-golden``: regenerate the file (generic tier)."""
    if not request.config.getoption("--update-golden"):
        pytest.skip("refresh path; pass --update-golden to run")
    golden = {
        "scale": GOLDEN_SCALE,
        "workloads": {
            workload: {
                spec: _measure(workload, spec, simulate)
                for spec in GOLDEN_SPECS
            }
            for workload in IBS_BENCHMARKS
        },
        "serving": {
            "spec": SERVING_SPEC,
            "chunk": SERVING_CHUNK,
            "batch": SERVING_BATCH,
            "tenants": _measure_serving(),
        },
    }
    GOLDEN_PATH.write_text(
        json.dumps(golden, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def test_golden_covers_exactly_the_matrix():
    golden = _load_golden()
    assert sorted(golden) == ["scale", "serving", "workloads"]
    assert golden["scale"] == GOLDEN_SCALE
    assert sorted(golden["workloads"]) == sorted(IBS_BENCHMARKS)
    for per_spec in golden["workloads"].values():
        assert sorted(per_spec) == sorted(GOLDEN_SPECS)
    serving = golden["serving"]
    assert serving["spec"] == SERVING_SPEC
    assert serving["chunk"] == SERVING_CHUNK
    assert serving["batch"] == SERVING_BATCH
    assert sorted(serving["tenants"]) == sorted(SERVING_WORKLOADS)


@pytest.mark.parametrize("engine_name", sorted(ENGINES))
@pytest.mark.parametrize("spec", GOLDEN_SPECS)
@pytest.mark.parametrize("workload", IBS_BENCHMARKS)
def test_rates_match_golden(workload, spec, engine_name):
    golden = _load_golden()
    expected = golden["workloads"][workload][spec]
    actual = _measure(workload, spec, ENGINES[engine_name])
    assert actual == expected, (
        f"{workload}/{spec} on the {engine_name} engine drifted from "
        f"golden; if intentional, refresh with --update-golden"
    )


def test_serving_matches_golden():
    """The serving tier: pinned per-tenant counts for the 3-tenant replay.

    Interleaved multi-tenant serving must not only agree with serial
    runs (the differential suites prove that); its absolute per-tenant
    numbers are pinned here so drift anywhere under the serving stack —
    sharding, batching, the state carry — shows up as a golden diff.
    """
    golden = _load_golden()
    expected = golden["serving"]["tenants"]
    actual = _measure_serving()
    assert actual == expected, (
        "per-tenant serving counts drifted from golden; if intentional, "
        "refresh with --update-golden"
    )
