"""R009 env-var contract: registry routing, undeclared names, hygiene."""

from __future__ import annotations

import pytest

REGISTRY = """
from dataclasses import dataclass


@dataclass(frozen=True)
class EnvVar:
    name: str
    type: str
    default: str
    doc: str


JOBS = EnvVar("REPRO_JOBS", "int", "1", "worker processes for sweeps")
ENGINE = EnvVar("REPRO_ENGINE", "choice", "", "force an engine tier")
"""


def r009(report):
    return [v for v in report.violations if v.rule_id == "R009"]


def write_registry(project):
    project.write("src/repro/__init__.py", "")
    project.write("src/repro/util/__init__.py", "")
    project.write("src/repro/util/envvars.py", REGISTRY)


class TestStrayReads:
    def test_environ_get_fires(self, project):
        write_registry(project)
        project.write(
            "src/reader.py",
            """
            import os

            def jobs():
                return os.environ.get("REPRO_JOBS", "1")
            """,
        )
        violations = r009(project.lint(["R009"]))
        assert len(violations) == 1
        assert violations[0].symbol == "REPRO_JOBS"
        assert "direct environment read" in violations[0].message

    def test_getenv_and_subscript_and_contains_fire(self, project):
        write_registry(project)
        project.write(
            "src/reader.py",
            """
            import os
            from os import environ

            def read():
                a = os.getenv("REPRO_JOBS")
                b = environ["REPRO_ENGINE"]
                c = "REPRO_JOBS" in os.environ
                return a, b, c
            """,
        )
        assert len(r009(project.lint(["R009"]))) == 3

    def test_name_resolved_through_project_constant(self, project):
        write_registry(project)
        project.write("src/names.py", 'JOBS_VAR = "REPRO_JOBS"\n')
        project.write(
            "src/reader.py",
            """
            import os

            from names import JOBS_VAR

            def jobs():
                return os.environ.get(JOBS_VAR)
            """,
        )
        violations = r009(project.lint(["R009"]))
        assert len(violations) == 1
        assert violations[0].symbol == "REPRO_JOBS"

    def test_undeclared_name_gets_registry_message(self, project):
        write_registry(project)
        project.write(
            "src/reader.py",
            """
            import os

            def secret():
                return os.environ.get("REPRO_UNDECLARED")
            """,
        )
        violations = r009(project.lint(["R009"]))
        assert len(violations) == 1
        assert "not declared in repro.util.envvars" in violations[0].message

    def test_non_repro_variables_ignored(self, project):
        write_registry(project)
        project.write(
            "src/reader.py",
            """
            import os

            def cc():
                return os.environ.get("CC", "cc"), os.environ["HOME"]
            """,
        )
        assert r009(project.lint(["R009"])) == []

    def test_registry_module_itself_may_read(self, project):
        write_registry(project)
        project.write(
            "src/repro/util/envvars.py",
            REGISTRY
            + """

import os


def raw(name):
    return os.environ.get(name)
""",
        )
        assert r009(project.lint(["R009"])) == []

    def test_pragma_silences(self, project):
        write_registry(project)
        project.write(
            "src/reader.py",
            """
            import os

            def jobs():
                return os.environ.get("REPRO_JOBS")  # repro-lint: disable=R009
            """,
        )
        assert r009(project.lint(["R009"])) == []


class TestRegistryHygiene:
    def test_missing_doc_fires(self, project):
        write_registry(project)
        project.write(
            "src/repro/util/envvars.py",
            REGISTRY.replace(
                '"int", "1", "worker processes for sweeps"',
                '"int", "1", ""',
            ),
        )
        violations = r009(project.lint(["R009"]))
        assert len(violations) == 1
        assert "without a docstring" in violations[0].message

    def test_foreign_namespace_fires(self, project):
        write_registry(project)
        project.write(
            "src/repro/util/envvars.py",
            REGISTRY.replace('"REPRO_ENGINE"', '"OTHER_ENGINE"'),
        )
        violations = r009(project.lint(["R009"]))
        assert len(violations) == 1
        assert "outside the REPRO_ namespace" in violations[0].message

    def test_duplicate_declaration_fires(self, project):
        write_registry(project)
        project.write(
            "src/repro/util/envvars.py",
            REGISTRY.replace('"REPRO_ENGINE"', '"REPRO_JOBS"'),
        )
        violations = r009(project.lint(["R009"]))
        assert any("declared twice" in v.message for v in violations)


class TestRealRegistry:
    def test_real_registry_covers_every_runtime_variable(self):
        from repro.util import envvars

        names = {var.name for var in envvars.REGISTRY}
        assert {
            "REPRO_CELL_TIMEOUT",
            "REPRO_ENGINE",
            "REPRO_FAULTS",
            "REPRO_JOBS",
            "REPRO_NATIVE",
            "REPRO_NATIVE_CACHE",
            "REPRO_TRACE_CACHE",
        } <= names
        for var in envvars.REGISTRY:
            assert var.doc.strip()
            assert var.name.startswith("REPRO_")
