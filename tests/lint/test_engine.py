"""Engine behavior: pragmas, baselines, file collection, parse errors."""

from __future__ import annotations

import pytest

from repro.lint.baseline import Baseline
from repro.lint.engine import Violation
from repro.lint.rules import all_rules, rules_by_id, select_rules

BAD_RNG = """
import random

def bad():
    return random.random()
"""


class TestPragmas:
    def test_line_pragma_suppresses_one_finding(self, project):
        project.write(
            "src/repro/a.py",
            """
            import random

            def bad():
                one = random.random()  # repro-lint: disable=R001
                two = random.random()
                return one + two
            """,
        )
        report = project.lint(["R001"])
        assert len(report.violations) == 1
        assert report.violations[0].line == 6

    def test_line_pragma_takes_a_rule_list(self, project):
        project.write(
            "src/repro/a.py",
            """
            import random

            def bad():
                return random.random()  # repro-lint: disable=R002,R001
            """,
        )
        assert project.lint(["R001"]).clean

    def test_file_pragma_suppresses_whole_file(self, project):
        project.write(
            "src/repro/a.py",
            """
            # repro-lint: disable-file=R001
            import random

            def bad():
                return random.random() + random.random()
            """,
        )
        assert project.lint(["R001"]).clean

    def test_disable_all(self, project):
        project.write(
            "src/repro/a.py",
            """
            import random

            def bad():
                return random.random()  # repro-lint: disable=all
            """,
        )
        assert project.lint(["R001"]).clean

    def test_pragma_on_other_line_does_not_suppress(self, project):
        project.write(
            "src/repro/a.py",
            """
            import random
            # repro-lint: disable=R001

            def bad():
                return random.random()
            """,
        )
        assert len(project.lint(["R001"]).violations) == 1


class TestBaseline:
    def test_round_trip_suppresses_matching_violations(self, project, tmp_path):
        project.write("src/repro/experiments/runner.py", "EXPERIMENTS = {}\n")
        project.write(
            "src/repro/experiments/figure1.py",
            "def run(scale=1.0):\n    return scale\n",
        )
        first = project.lint(["R003"])
        assert first.violations

        path = tmp_path / "baseline.json"
        Baseline.from_violations(first.violations).save(path)
        loaded = Baseline.load(path)
        assert loaded.fingerprints == {
            v.fingerprint for v in first.violations
        }

        second = project.lint(["R003"], baseline=loaded.fingerprints)
        assert second.clean
        assert len(second.suppressed) == len(first.violations)

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").fingerprints == set()

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 1}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a repro-lint baseline"):
            Baseline.load(path)

    @pytest.mark.parametrize("rule_id", ["R001", "R002"])
    def test_determinism_and_bitwidth_refuse_baselining(
        self, tmp_path, rule_id
    ):
        violation = Violation(
            rule_id=rule_id,
            path="src/repro/x.py",
            line=3,
            symbol="f",
            message="whatever",
        )
        baseline = Baseline.from_violations([violation])
        with pytest.raises(ValueError, match="must be fixed"):
            baseline.save(tmp_path / "baseline.json")
        assert not (tmp_path / "baseline.json").exists()

    def test_baseline_does_not_hide_new_violations(self, project):
        project.write("src/repro/experiments/runner.py", "EXPERIMENTS = {}\n")
        project.write(
            "src/repro/experiments/figure1.py",
            "def run(scale=1.0):\n    return scale\n",
        )
        stale = {"R003::src/repro/experiments/other.py::other::gone"}
        report = project.lint(["R003"], baseline=stale)
        assert report.violations and not report.suppressed


class TestEngine:
    def test_parse_error_is_reported_and_fails(self, project):
        project.write("src/repro/broken.py", "def broken(:\n")
        project.write("src/repro/fine.py", "X = 1\n")
        report = project.lint(["R001"])
        assert not report.clean
        assert len(report.parse_errors) == 1
        assert "broken.py" in report.parse_errors[0]
        assert report.checked_files == 1

    def test_pycache_and_git_dirs_skipped(self, project):
        project.write("src/repro/__pycache__/junk.py", BAD_RNG)
        project.write("src/repro/ok.py", "X = 1\n")
        report = project.lint(["R001"])
        assert report.clean and report.checked_files == 1

    def test_violation_fingerprint_ignores_line(self):
        a = Violation("R003", "src/x.py", 10, "run", "msg")
        b = Violation("R003", "src/x.py", 99, "run", "msg")
        assert a.fingerprint == b.fingerprint

    def test_render_format(self):
        violation = Violation("R001", "src/x.py", 7, "f", "msg")
        assert violation.render() == "src/x.py:7: R001 [f]: msg"


class TestRuleRegistry:
    def test_all_rules_registered(self):
        assert [rule.rule_id for rule in all_rules()] == [
            "R001",
            "R002",
            "R003",
            "R004",
            "R005",
            "R006",
            "R007",
            "R008",
            "R009",
        ]

    def test_descriptions_present(self):
        for rule in all_rules():
            assert rule.name and rule.description

    def test_select_rules(self):
        assert [r.rule_id for r in select_rules(["r004", "R001"])] == [
            "R001",
            "R004",
        ]
        with pytest.raises(KeyError):
            select_rules(["R999"])
        assert set(rules_by_id()) == {f"R00{i}" for i in range(1, 10)}
