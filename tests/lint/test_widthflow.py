"""R007 width-flow: fixtures, seeded historical regressions, native gate."""

from __future__ import annotations

from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def r007(report):
    return [v for v in report.violations if v.rule_id == "R007"]


class TestSeededRegressions:
    """The two width bugs this repo actually shipped, reduced to fixtures.

    PR 2's gshare bug collapsed the index when ``index_bits`` made the
    shifted history overflow its word; PR 3's variant folded an
    unmasked history register past its container.  R007 must flag both
    shapes with no baseline, no pragma and no guard present.
    """

    def test_gshare_index_width_twin_fires(self, project):
        project.write(
            "src/gshare.py",
            """
            import numpy as np

            def gshare_keys(words, history, index_bits, history_bits):
                folded = np.uint32(history << (index_bits + history_bits))
                return words ^ folded
            """,
        )
        violations = r007(project.lint(["R007"]))
        assert len(violations) == 1
        assert violations[0].symbol == "gshare_keys"
        assert "uint32" in violations[0].message

    def test_unmasked_history_fold_fires(self, project):
        project.write(
            "src/fold.py",
            """
            import numpy as np

            def fold_history(history, hist_bits, n):
                word = np.empty(n, dtype=np.uint16)
                np.left_shift(history, hist_bits, out=word, casting="unsafe")
                return word
            """,
        )
        violations = r007(project.lint(["R007"]))
        assert len(violations) == 1
        assert "uint16" in violations[0].message

    def test_definite_overflow_is_flagged(self, project):
        project.write(
            "src/overflow.py",
            """
            import numpy as np

            def pack(k):
                return np.uint8((3 << 7) << k)
            """,
        )
        violations = r007(project.lint(["R007"]))
        assert len(violations) == 1
        assert "definite overflow" in violations[0].message


class TestSuppressions:
    def test_in_function_guard_silences(self, project):
        project.write(
            "src/guarded.py",
            """
            import numpy as np

            def gshare_keys(words, history, index_bits, history_bits):
                if index_bits + history_bits <= 32:
                    folded = np.uint32(history << (index_bits + history_bits))
                    return words ^ folded
                return words
            """,
        )
        assert r007(project.lint(["R007"])) == []

    def test_cross_module_guard_silences(self, project):
        project.write(
            "src/pack.py",
            """
            import numpy as np

            def pack(stream, entry_bits, b):
                return np.uint64(b << entry_bits)
            """,
        )
        project.write(
            "src/driver.py",
            """
            from pack import pack

            def width_ok(entry_bits):
                return entry_bits + 2 <= 64

            def run(stream, entry_bits):
                if width_ok(entry_bits):
                    return pack(stream, entry_bits, 3)
                return None
            """,
        )
        assert r007(project.lint(["R007"])) == []

    def test_mask_construction_is_exempt(self, project):
        project.write(
            "src/masks.py",
            """
            import numpy as np

            def make_mask(shift):
                return np.uint32((1 << shift) - 2)

            def truncate(history, index_bits):
                return np.uint64((history << 1) & ((1 << index_bits) - 1))
            """,
        )
        assert r007(project.lint(["R007"])) == []

    def test_provable_fit_is_exempt(self, project):
        project.write(
            "src/fits.py",
            """
            import numpy as np

            def small(history, k):
                low = history & ((1 << 8) - 1)
                return np.uint32(low << 4)
            """,
        )
        assert r007(project.lint(["R007"])) == []

    def test_constant_shift_is_not_packing(self, project):
        project.write(
            "src/plain.py",
            """
            import numpy as np

            def positions(n):
                word = np.empty(n, dtype=np.uint32)
                np.left_shift(np.arange(n), 1, out=word)
                return word
            """,
        )
        assert r007(project.lint(["R007"])) == []

    def test_pragma_silences(self, project):
        project.write(
            "src/pragma.py",
            """
            import numpy as np

            def fold(history, bits):
                return np.uint32(history << bits)  # repro-lint: disable=R007
            """,
        )
        assert r007(project.lint(["R007"])) == []


class TestNativeGate:
    """R007 must rediscover why sim/native.py needs word_width_ok."""

    NATIVE = REPO_ROOT / "src" / "repro" / "sim" / "native.py"

    def _fixture_copy(self, project, source: str) -> None:
        # The real module imports half the repo; strip it down to the
        # parsed surface R007 looks at (imports resolve best-effort).
        project.write("src/fixture_native.py", source)

    def test_real_native_with_gate_is_clean(self, project):
        source = self.NATIVE.read_text(encoding="utf-8")
        self._fixture_copy(project, source)
        assert r007(project.lint(["R007"])) == []

    def test_gates_removed_fire_on_packing_site(self, project):
        source = self.NATIVE.read_text(encoding="utf-8")
        gate = "entry_bits + tag_bits + shift <= 64"
        local = "entry_bits + (banks - 1).bit_length() > 64"
        assert gate in source, "word_width_ok's guard moved; update this test"
        assert local in source, "_tagged_keys' guard moved; update this test"
        stripped = source.replace(gate, "True").replace(local, "False")
        self._fixture_copy(project, stripped)
        violations = r007(project.lint(["R007"]))
        assert violations, (
            "removing both width comparisons must expose the uint64 "
            "key packing in _tagged_keys"
        )
        assert {v.symbol for v in violations} == {"_tagged_keys"}
        assert all("64" in v.message for v in violations)

    def test_baseline_refuses_r007(self, project):
        from repro.lint.baseline import NEVER_BASELINED

        assert "R007" in NEVER_BASELINED
