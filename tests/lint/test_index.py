"""Unit tests for the whole-project lint index."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import ProjectContext


@pytest.fixture
def indexed(project):
    project.write(
        "src/pk/__init__.py",
        """
        from pk.core import WIDTH, pack
        """,
    )
    project.write(
        "src/pk/core.py",
        """
        WIDTH = 64
        NAME = "core"

        def helper(x):
            return x + 1

        def pack(stream, bits):
            return helper(stream) << bits

        class Table:
            def touch(self):
                return helper(0)
        """,
    )
    project.write(
        "src/pk/driver.py",
        """
        from pk.core import pack, WIDTH
        from pk import helper_missing  # unresolvable, must not crash

        LIMIT = WIDTH

        def run(stream, bits):
            if bits <= WIDTH:
                return pack(stream, bits)
            return None

        pack(0, 1)  # module-level call site
        """,
    )
    return project, ProjectContext(project.root).index()


class TestModuleTable:
    def test_modules_keyed_by_dotted_name(self, indexed):
        _, index = indexed
        assert {"pk", "pk.core", "pk.driver"} <= set(index.modules)

    def test_symbols_and_functions(self, indexed):
        _, index = indexed
        core = index.module("pk.core")
        assert {"WIDTH", "NAME", "helper", "pack", "Table"} <= set(core.symbols)
        assert "pack" in core.functions
        assert "Table.touch" in core.functions  # methods use qualnames

    def test_constants_capture_literals_only(self, indexed):
        _, index = indexed
        core = index.module("pk.core")
        assert core.constants["WIDTH"] == 64
        assert core.constants["NAME"] == "core"
        driver = index.module("pk.driver")
        # LIMIT = WIDTH is a name, not a literal
        assert "LIMIT" not in driver.constants

    def test_module_for_path(self, indexed):
        project, index = indexed
        info = index.module_for_path("src/pk/core.py")
        assert info is not None and info.name == "pk.core"


class TestResolution:
    def test_from_import_resolves(self, indexed):
        _, index = indexed
        assert index.resolve("pk.driver", "pack") == ("pk.core", "pack")

    def test_local_symbol_resolves_to_self(self, indexed):
        _, index = indexed
        assert index.resolve("pk.core", "helper") == ("pk.core", "helper")

    def test_reexport_hop(self, indexed):
        _, index = indexed
        # pk/__init__ re-exports pack from pk.core
        project_module = index.module("pk")
        assert project_module.imports["pack"] == "pk.core.pack"
        assert index.resolve("pk", "pack") == ("pk.core", "pack")

    def test_unknown_name_is_none(self, indexed):
        _, index = indexed
        assert index.resolve("pk.driver", "nonexistent") is None
        assert index.resolve("no.such.module", "pack") is None

    def test_constant_resolves_through_import(self, indexed):
        _, index = indexed
        assert index.resolve_constant("pk.driver", "WIDTH") == 64
        assert index.resolve_constant("pk.core", "WIDTH") == 64
        assert index.resolve_constant("pk.driver", "missing") is None


class TestCallGraph:
    def test_callers_include_cross_module_and_module_level(self, indexed):
        _, index = indexed
        callers = index.callers_of("pk.core", "pack")
        seen = {(site.module, site.function) for site in callers}
        assert ("pk.driver", "run") in seen
        assert ("pk.driver", "") in seen  # the module-level call

    def test_callees(self, indexed):
        _, index = indexed
        assert ("pk.core", "pack") in index.callees_of("pk.driver", "run")
        assert ("pk.core", "helper") in index.callees_of("pk.core", "pack")

    def test_method_calls_are_attributed(self, indexed):
        _, index = indexed
        assert ("pk.core", "helper") in index.callees_of(
            "pk.core", "Table.touch"
        )

    def test_neighborhood_reaches_guard_function(self, indexed):
        _, index = indexed
        ball = index.neighborhood("pk.core", "pack", depth=2)
        assert ("pk.driver", "run") in ball
        assert ("pk.core", "helper") in ball


class TestRealTree:
    """The index must understand the code this repo actually ships."""

    def test_width_gates_reachable_from_kernel(self):
        index = ProjectContext(Path(__file__).resolve().parents[2]).index()
        ball = index.neighborhood("repro.sim.native", "run_table_kernel")
        # The geometry gate sits three hops up (simulate_native →
        # native_supports → native_cell_ok); its word_width_ok core is
        # one hop further, so R007 relies on the in-function guard in
        # _tagged_keys instead.
        assert ("repro.sim.native", "native_cell_ok") in ball
        wide = index.neighborhood(
            "repro.sim.native", "run_table_kernel", depth=4
        )
        assert ("repro.sim.native", "word_width_ok") in wide

    def test_native_kernel_callers(self):
        index = ProjectContext(Path(__file__).resolve().parents[2]).index()
        callers = {
            (site.module, site.function)
            for site in index.callers_of("repro.sim.native", "run_table_kernel")
        }
        assert ("repro.sim.native", "simulate_native") in callers
        assert ("repro.sim.scan_grid", "_native_bucket") in callers
