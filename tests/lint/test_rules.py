"""Fixture-driven tests: each rule R001-R006 fires on purpose-built
violations and stays silent on the sanctioned pattern next to them."""

from __future__ import annotations


def _rules_hit(report):
    return sorted({v.rule_id for v in report.violations})


def _messages(report):
    return [v.message for v in report.violations]


class TestR001Determinism:
    def test_global_random_calls_flagged(self, project):
        project.write(
            "src/repro/rng_use.py",
            """
            import random
            import numpy as np

            def bad():
                value = random.random()
                random.shuffle([1, 2, 3])
                np.random.seed(3)
                return value
            """,
        )
        report = project.lint(["R001"])
        assert len(report.violations) == 3
        assert all(v.rule_id == "R001" for v in report.violations)
        assert all(v.symbol == "bad" for v in report.violations)
        assert any("random.shuffle" in m for m in _messages(report))
        assert any("np.random.seed" in m for m in _messages(report))

    def test_unseeded_constructors_flagged(self, project):
        project.write(
            "src/repro/rng_ctor.py",
            """
            import random
            from numpy.random import default_rng

            def bad():
                return random.Random(), default_rng()
            """,
        )
        report = project.lint(["R001"])
        assert len(report.violations) == 2
        assert all("explicit seed" in m for m in _messages(report))

    def test_seeded_instances_are_clean(self, project):
        project.write(
            "src/repro/rng_good.py",
            """
            import random
            import numpy as np

            def good(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng.random() + gen.random()
            """,
        )
        assert project.lint(["R001"]).clean


class TestR002BitWidth:
    def test_unmasked_index_return_flagged(self, project):
        project.write(
            "src/repro/idx.py",
            """
            def bad_index(pc, history, index_bits):
                return pc ^ history

            def good_index(pc, history, index_bits):
                mask = (1 << index_bits) - 1
                return (pc ^ history) & mask
            """,
        )
        report = project.lint(["R002"])
        assert [v.symbol for v in report.violations] == ["bad_index"]
        assert "not masked" in report.violations[0].message

    def test_shift_by_width_loop_needs_guard(self, project):
        project.write(
            "src/repro/fold.py",
            """
            def bad_fold(value, index_bits):
                folded = 0
                while value:
                    folded ^= value
                    value >>= index_bits
                return folded

            def good_fold(value, index_bits):
                if index_bits == 0:
                    return 0
                folded = 0
                while value:
                    folded ^= value
                    value >>= index_bits
                return folded
            """,
        )
        report = project.lint(["R002"])
        assert [v.symbol for v in report.violations] == ["bad_fold"]
        assert "never terminates at zero width" in report.violations[0].message

    def test_modulo_by_width_param_needs_guard(self, project):
        project.write(
            "src/repro/slots.py",
            """
            def bad_slot(pc, n):
                return pc % n

            def good_slot(pc, n):
                if n < 1:
                    raise ValueError(n)
                return pc % n
            """,
        )
        report = project.lint(["R002"])
        assert [v.symbol for v in report.violations] == ["bad_slot"]
        assert "% n" in report.violations[0].message

    def test_uncast_dynamic_numpy_shift_flagged(self, project):
        project.write(
            "src/repro/npshift.py",
            """
            import numpy as np

            def bad(values, amount):
                arr = np.asarray(values, dtype=np.uint64)
                return arr << amount

            def good(values, amount):
                arr = np.asarray(values, dtype=np.uint64)
                return (arr << np.uint64(amount)) | (arr >> 3)
            """,
        )
        report = project.lint(["R002"])
        assert [v.symbol for v in report.violations] == ["bad"]
        assert "np.uint64" in report.violations[0].message


class TestR003ExperimentContract:
    RUNNER = """
    EXPERIMENTS = {
        "figure1": (figure1, True),
        "figure2": (figure2, True),
        "figure3": (figure3, False),
    }
    """

    def test_missing_run_and_missing_jobs(self, project):
        project.write("src/repro/experiments/runner.py", self.RUNNER)
        project.write(
            "src/repro/experiments/figure1.py",
            """
            def render(result):
                return str(result)
            """,
        )
        project.write(
            "src/repro/experiments/figure2.py",
            """
            def run(scale=1.0):
                return scale
            """,
        )
        report = project.lint(["R003"])
        by_path = {v.path: v.message for v in report.violations}
        assert "no top-level run()" in by_path["src/repro/experiments/figure1.py"]
        assert "'jobs'" in by_path["src/repro/experiments/figure2.py"]

    def test_unregistered_module_flagged(self, project):
        project.write("src/repro/experiments/runner.py", self.RUNNER)
        project.write(
            "src/repro/experiments/figure9.py",
            """
            def run(jobs=None):
                return jobs
            """,
        )
        report = project.lint(["R003"])
        assert len(report.violations) == 1
        assert "not registered" in report.violations[0].message

    def test_sweep_call_must_thread_jobs(self, project):
        project.write("src/repro/experiments/runner.py", self.RUNNER)
        project.write(
            "src/repro/experiments/figure3.py",
            """
            from repro.sim.sweep import size_sweep

            def run(jobs=None):
                return size_sweep([1, 2], 4)
            """,
        )
        report = project.lint(["R003"])
        assert len(report.violations) == 1
        assert "does not pass jobs=" in report.violations[0].message

    def test_conforming_module_is_clean(self, project):
        project.write("src/repro/experiments/runner.py", self.RUNNER)
        project.write(
            "src/repro/experiments/figure3.py",
            """
            from repro.sim.sweep import size_sweep

            def run(jobs=None):
                return size_sweep([1, 2], 4, jobs=jobs)
            """,
        )
        assert project.lint(["R003"]).clean

    def test_non_experiment_files_ignored(self, project):
        project.write(
            "src/repro/experiments/common.py",
            """
            def helper():
                return 1
            """,
        )
        assert project.lint(["R003"]).clean


class TestR004EngineParity:
    def test_untested_entry_point_flagged(self, project):
        project.write(
            "src/repro/sim/vectorized.py",
            """
            __all__ = ["covered_fn", "uncovered_fn"]

            def covered_fn():
                return 1

            def uncovered_fn():
                return 2

            def _private():
                return 3
            """,
        )
        project.write(
            "tests/test_equiv.py",
            """
            from repro.sim.vectorized import covered_fn

            def test_covered_fn():
                assert covered_fn() == 1
            """,
        )
        report = project.lint(["R004"])
        assert [v.symbol for v in report.violations] == ["uncovered_fn"]

    def test_scan_module_is_a_target(self, project):
        project.write(
            "src/repro/sim/scan.py",
            """
            __all__ = ["simulate_scan"]

            def simulate_scan():
                return 1
            """,
        )
        report = project.lint(["R004"])
        assert [v.symbol for v in report.violations] == ["simulate_scan"]
        project.write(
            "tests/test_scan_equiv.py",
            """
            from repro.sim.scan import simulate_scan

            def test_simulate_scan():
                assert simulate_scan() == 1
            """,
        )
        assert project.lint(["R004"]).clean

    def test_native_module_is_a_target(self, project):
        project.write(
            "src/repro/sim/native.py",
            """
            __all__ = ["simulate_native"]

            def simulate_native():
                return 1
            """,
        )
        report = project.lint(["R004"])
        assert [v.symbol for v in report.violations] == ["simulate_native"]
        project.write(
            "tests/test_native_equiv.py",
            """
            from repro.sim.native import simulate_native

            def test_simulate_native():
                assert simulate_native() == 1
            """,
        )
        assert project.lint(["R004"]).clean

    def test_dunder_all_limits_the_public_surface(self, project):
        project.write(
            "src/repro/aliasing/vectorized.py",
            """
            __all__ = ["exported"]

            def exported():
                return 1

            def helper_not_exported():
                return 2
            """,
        )
        project.write(
            "tests/test_equiv.py",
            """
            def test_exported():
                from repro.aliasing.vectorized import exported
                assert exported() == 1
            """,
        )
        assert project.lint(["R004"]).clean


class TestR006NativeKernelTest:
    NATIVE = """
    _CDEF = \"\"\"
    void repro_pack_sort(const uint64_t *keys, int64_t n);
    int64_t repro_scan_sorted(const uint64_t *words, int64_t m);
    \"\"\"

    def simulate_native():
        return _CDEF
    """

    def test_unreferenced_entry_point_flagged(self, project):
        project.write("src/repro/sim/native.py", self.NATIVE)
        project.write(
            "tests/test_kernel.py",
            """
            def test_pack_sort(lib):
                lib.repro_pack_sort(b"", 0)
            """,
        )
        report = project.lint(["R006"])
        assert [v.symbol for v in report.violations] == ["repro_scan_sorted"]
        assert "referencing it by name" in report.violations[0].message

    def test_all_entry_points_referenced_is_clean(self, project):
        project.write("src/repro/sim/native.py", self.NATIVE)
        project.write(
            "tests/test_kernel.py",
            """
            def test_kernels(lib):
                lib.repro_pack_sort(b"", 0)
                assert lib.repro_scan_sorted(b"", 0) == 0
            """,
        )
        assert project.lint(["R006"]).clean

    def test_partial_name_match_does_not_count(self, project):
        # "repro_scan_sorted_v2" must not satisfy "repro_scan_sorted";
        # the reference has to be the whole word.
        project.write("src/repro/sim/native.py", self.NATIVE)
        project.write(
            "tests/test_kernel.py",
            """
            def test_kernels(lib):
                lib.repro_pack_sort(b"", 0)
                lib.repro_scan_sorted_v2(b"", 0)
            """,
        )
        report = project.lint(["R006"])
        assert [v.symbol for v in report.violations] == ["repro_scan_sorted"]

    def test_other_modules_ignored(self, project):
        project.write(
            "src/repro/sim/other.py",
            """
            _CDEF = "void repro_untested_kernel(int64_t n);"
            """,
        )
        assert project.lint(["R006"]).clean


class TestR005CacheKey:
    GENERATOR = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class WorkloadConfig:
        name: str
        seed: int
        length: int

        def scaled(self, factor):
            return int(self.length * factor)
    """

    CACHE_ASDICT = """
    import dataclasses
    import hashlib
    import json

    def config_fingerprint(config):
        payload = json.dumps(dataclasses.asdict(config), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()
    """

    CACHE_MANUAL = """
    import hashlib
    import json

    def config_fingerprint(config):
        payload = json.dumps({"name": config.name, "seed": config.seed})
        return hashlib.sha256(payload.encode()).hexdigest()
    """

    def test_undeclared_attribute_read_flagged(self, project):
        project.write("src/repro/traces/synthetic/generator.py", self.GENERATOR)
        project.write("src/repro/traces/cache.py", self.CACHE_ASDICT)
        project.write(
            "src/repro/traces/synthetic/behavior.py",
            """
            def generate(config: "WorkloadConfig"):
                return config.length + config.bogus_knob
            """,
        )
        report = project.lint(["R005"])
        assert len(report.violations) == 1
        assert "config.bogus_knob" in report.violations[0].message

    def test_manual_fingerprint_missing_field_flagged(self, project):
        project.write("src/repro/traces/synthetic/generator.py", self.GENERATOR)
        project.write("src/repro/traces/cache.py", self.CACHE_MANUAL)
        project.write(
            "src/repro/traces/synthetic/behavior.py",
            """
            def generate(config: "WorkloadConfig"):
                return config.length
            """,
        )
        report = project.lint(["R005"])
        messages = _messages(report)
        # Both ends are flagged: the fingerprint is incomplete, and the
        # generator reads the uncovered field.
        assert any("does not cover declared" in m and "length" in m
                   for m in messages)
        assert any("config.length" in m for m in messages)

    def test_asdict_fingerprint_and_declared_reads_are_clean(self, project):
        project.write("src/repro/traces/synthetic/generator.py", self.GENERATOR)
        project.write("src/repro/traces/cache.py", self.CACHE_ASDICT)
        project.write(
            "src/repro/traces/synthetic/behavior.py",
            """
            def generate(config: "WorkloadConfig"):
                return config.scaled(0.5) + config.seed
            """,
        )
        assert project.lint(["R005"]).clean
