"""Shared fixtures for the repro-lint test suite.

The rule tests run the real engine over tiny synthetic project trees so
every finding (and every non-finding) is asserted against code written
for that purpose — the real ``src/`` tree is only touched by the meta
test, which asserts it lints clean.
"""

from __future__ import annotations

from pathlib import Path
from textwrap import dedent
from typing import Iterable, Sequence

import pytest

from repro.lint.engine import LintReport, ProjectContext, lint_paths
from repro.lint.rules import all_rules, select_rules


class FixtureProject:
    """A throwaway project tree the linter can be pointed at."""

    def __init__(self, root: Path):
        self.root = root
        (root / "setup.cfg").write_text(
            "[metadata]\nname = fixture\n", encoding="utf-8"
        )
        (root / "src").mkdir()
        (root / "tests").mkdir()

    def write(self, rel_path: str, source: str) -> Path:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source), encoding="utf-8")
        return path

    def lint(
        self,
        rule_ids: Sequence[str] = (),
        baseline: Iterable[str] = (),
    ) -> LintReport:
        rules = select_rules(list(rule_ids)) if rule_ids else all_rules()
        return lint_paths(
            [self.root / "src"],
            rules,
            project=ProjectContext(self.root),
            baseline_fingerprints=baseline,
        )


@pytest.fixture
def project(tmp_path) -> FixtureProject:
    return FixtureProject(tmp_path)
