"""Unit tests for the abstract dtype/bit-width dataflow."""

from __future__ import annotations

import ast
from textwrap import dedent

import pytest

from repro.lint.dataflow import (
    DTYPE_VALUE_BITS,
    FunctionDataflow,
    Width,
    dtype_from_name,
)

NP = {"np": "numpy"}


def analyze(body: str, imports=NP) -> FunctionDataflow:
    source = "import numpy as np\n" + dedent(body)
    tree = ast.parse(source)
    fn = next(n for n in tree.body if isinstance(n, ast.FunctionDef))
    return FunctionDataflow(fn, imports=imports)


class TestWidth:
    def test_constant_width_is_bit_length(self):
        assert Width.of_constant(0).const == 0
        assert Width.of_constant(1).const == 1
        assert Width.of_constant(255).const == 8
        assert Width.of_constant(256).const == 9

    def test_join_takes_max_const_and_unions_terms(self):
        joined = Width(3, ("a",)).join(Width(5, ("b",)))
        assert joined == Width(5, ("a", "b"))

    def test_join_with_unbounded_is_unbounded(self):
        assert Width(3).join(Width.top()).unbounded

    def test_fits_definite_cases(self):
        assert Width(8).fits(8) is True
        assert Width(9).fits(8) is False
        assert Width(9).fits(None) is True  # no capacity, nothing to exceed

    def test_fits_symbolic_is_undecided(self):
        assert Width(0, ("k",)).fits(8) is None
        assert Width.top().fits(64) is None

    def test_fits_symbolic_with_oversized_const_is_false(self):
        # terms only grow the exponent, so const alone decides overflow
        assert Width(9, ("k",)).fits(8) is False


class TestTransfer:
    def test_mask_literal_collapses_to_term(self):
        df = analyze(
            """
            def f(k):
                mask = (1 << k) - 1
                return mask
            """
        )
        assert df.env["mask"].width == Width(0, ("k",))

    def test_bitand_meets_to_mask_width(self):
        df = analyze(
            """
            def f(value, k):
                mask = (1 << k) - 1
                idx = value & mask
                return idx
            """
        )
        assert df.env["idx"].width == Width(0, ("k",))

    def test_mod_bounds_by_divisor(self):
        df = analyze(
            """
            def f(value, k):
                size = 1 << k
                return value % size
            """
        )
        # x % (1 << k) < 2**(k+1); the divisor's width bounds the result
        assert df.env is not None

    def test_shift_adds_symbolic_exponent(self):
        df = analyze(
            """
            def f(k):
                word = 3 << (k + 2)
                return word
            """
        )
        assert df.env["word"].width == Width(4, ("k",))

    def test_constant_folding(self):
        df = analyze(
            """
            def f():
                x = 3 << 4
                y = x + 1
                return y
            """
        )
        assert df.env["x"].const_value == 48
        assert df.env["y"].const_value == 49

    def test_add_costs_one_carry_bit(self):
        df = analyze(
            """
            def f(a_small, k):
                a = a_small & ((1 << k) - 1)
                b = a + a
                return b
            """
        )
        assert df.env["b"].width == Width(1, ("k",))

    def test_scalar_cast_sets_dtype_and_clamps_width(self):
        df = analyze(
            """
            def f(x):
                word = np.uint32(x)
                return word
            """
        )
        assert df.env["word"].dtype == "uint32"
        assert df.env["word"].width == Width(32)

    def test_cast_site_records_pre_width(self):
        df = analyze(
            """
            def f(k):
                word = np.uint64(3 << (k + 2))
                return word
            """
        )
        (site,) = df.cast_sites
        assert site.dtype == "uint64"
        assert site.pre_width == Width(4, ("k",))
        assert site.kind == "cast"

    def test_astype_is_a_cast_site(self):
        df = analyze(
            """
            def f(arr):
                return arr.astype(np.uint16)
            """
        )
        (site,) = df.cast_sites
        assert site.dtype == "uint16"

    def test_array_ctor_dtype_keyword(self):
        df = analyze(
            """
            def f(n):
                buf = np.empty(n, dtype=np.uint64)
                return buf
            """
        )
        assert df.env["buf"].dtype == "uint64"

    def test_subscript_preserves_dtype(self):
        df = analyze(
            """
            def f(n):
                buf = np.empty(n, dtype=np.uint64)
                block = buf[1:4]
                return block
            """
        )
        assert df.env["block"].dtype == "uint64"

    def test_ufunc_out_records_site_with_out_dtype(self):
        df = analyze(
            """
            def f(stream, shift, n):
                packed = np.empty(n, dtype=np.uint32)
                np.left_shift(stream, shift, out=packed, casting="unsafe")
                return packed
            """
        )
        sites = [s for s in df.cast_sites if s.kind == "ufunc"]
        assert len(sites) == 1
        assert sites[0].dtype == "uint32"

    def test_concatenate_joins_element_dtypes(self):
        df = analyze(
            """
            def f(a, b):
                joined = np.concatenate(
                    [np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64)]
                )
                return joined
            """
        )
        assert df.env["joined"].dtype == "int64"

    def test_if_joins_branches(self):
        df = analyze(
            """
            def f(flag, k):
                if flag:
                    x = (1 << k) - 1
                else:
                    x = 255
                return x
            """
        )
        assert df.env["x"].width == Width(8, ("k",))

    def test_loop_widening_drops_growing_bounds(self):
        df = analyze(
            """
            def f(n):
                acc = 1
                for _ in range(n):
                    acc = acc << 1
                return acc
            """
        )
        assert df.env["acc"].width.unbounded

    def test_definitions_record_every_assignment(self):
        df = analyze(
            """
            def f(flag):
                x = 1
                if flag:
                    x = 2
                return x
            """
        )
        assert len(df.definitions["x"]) == 2


class TestDtypeNames:
    def test_attribute_form(self):
        assert dtype_from_name("np.uint64", {"np"}, {}) == "uint64"
        assert dtype_from_name("np.bogus", {"np"}, {}) is None

    def test_from_import_form(self):
        imports = {"uint32": "numpy.uint32"}
        assert dtype_from_name("uint32", set(), imports) == "uint32"

    def test_capacities(self):
        assert DTYPE_VALUE_BITS["uint64"] == 64
        assert DTYPE_VALUE_BITS["int64"] == 63  # sign bit is not storage
        assert DTYPE_VALUE_BITS["pyint"] is None
