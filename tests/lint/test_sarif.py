"""SARIF 2.1.0 emitter: structure, determinism, golden round-trip."""

from __future__ import annotations

import json
from pathlib import Path

from repro import __version__
from repro.lint.sarif import (
    SARIF_SCHEMA_URI,
    SARIF_VERSION,
    render_sarif,
    sarif_log,
)

GOLDEN = Path(__file__).parent / "data" / "sarif_golden.json"

BAD_RNG = """
import random


def bad():
    return random.random()
"""

BAD_WIDTH = """
import numpy as np


def pack(history, bits):
    return np.uint32(history << bits)
"""


def _dirty_report(project):
    """Two violations (R001, R007) over a deterministic fixture tree."""
    project.write("src/repro/bad.py", BAD_RNG)
    project.write("src/repro/packing.py", BAD_WIDTH)
    return project.lint(["R001", "R007"])


def _dirty_log(project):
    from repro.lint.rules import select_rules

    rules = select_rules(["R001", "R007"])
    return sarif_log(_dirty_report(project), rules), rules


class TestStructure:
    def test_log_envelope(self, project):
        log, _rules = _dirty_log(project)
        assert log["version"] == SARIF_VERSION == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA_URI
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        assert run["columnKind"] == "utf16CodeUnits"
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert driver["version"] == __version__

    def test_driver_rules_are_ordered_and_described(self, project):
        log, rules = _dirty_log(project)
        entries = log["runs"][0]["tool"]["driver"]["rules"]
        assert [e["id"] for e in entries] == sorted(r.rule_id for r in rules)
        for entry in entries:
            assert entry["name"]
            assert entry["shortDescription"]["text"]
            assert entry["defaultConfiguration"] == {"level": "error"}

    def test_results_reference_rules_and_locations(self, project):
        log, _rules = _dirty_log(project)
        run = log["runs"][0]
        entries = run["tool"]["driver"]["rules"]
        results = run["results"]
        assert {r["ruleId"] for r in results} == {"R001", "R007"}
        for result in results:
            assert entries[result["ruleIndex"]]["id"] == result["ruleId"]
            assert result["level"] == "error"
            assert result["message"]["text"].startswith("[")
            [location] = result["locations"]
            physical = location["physicalLocation"]
            artifact = physical["artifactLocation"]
            assert not artifact["uri"].startswith("/")
            assert artifact["uriBaseId"] == "%SRCROOT%"
            assert physical["region"]["startLine"] >= 1

    def test_fingerprints_match_baseline_keys(self, project):
        report = _dirty_report(project)
        from repro.lint.rules import select_rules

        log = sarif_log(report, select_rules(["R001", "R007"]))
        emitted = {
            r["partialFingerprints"]["reproLint/v1"]
            for r in log["runs"][0]["results"]
        }
        assert emitted == {v.fingerprint for v in report.violations}

    def test_clean_report_is_successful_and_empty(self, project):
        from repro.lint.rules import all_rules

        project.write("src/repro/ok.py", "X = 1\n")
        log = sarif_log(project.lint(), all_rules())
        run = log["runs"][0]
        assert run["results"] == []
        [invocation] = run["invocations"]
        assert invocation["executionSuccessful"] is True
        assert "toolExecutionNotifications" not in invocation

    def test_parse_errors_become_notifications(self, project):
        from repro.lint.rules import all_rules

        project.write("src/repro/broken.py", "def oops(:\n")
        log = sarif_log(project.lint(), all_rules())
        [invocation] = log["runs"][0]["invocations"]
        assert invocation["executionSuccessful"] is False
        [notification] = invocation["toolExecutionNotifications"]
        assert notification["level"] == "error"
        assert "parse error" in notification["message"]["text"]


class TestRendering:
    def test_render_round_trips(self, project):
        log, rules = _dirty_log(project)
        rendered = render_sarif(_dirty_report(project), rules)
        assert json.loads(rendered) == log

    def test_render_is_deterministic(self, project):
        report = _dirty_report(project)
        from repro.lint.rules import select_rules

        rules = select_rules(["R001", "R007"])
        assert render_sarif(report, rules) == render_sarif(report, rules)

    def test_golden_file(self, project):
        """The emitter's exact bytes are pinned; regenerate with
        ``python tools/gen_sarif_golden.py`` after a deliberate change."""
        from repro.lint.rules import select_rules

        rules = select_rules(["R001", "R007"])
        rendered = render_sarif(_dirty_report(project), rules)
        assert rendered == GOLDEN.read_text(encoding="utf-8").rstrip("\n")
