"""CLI behavior of ``repro-lint`` (exit codes, formats, baseline flags)."""

from __future__ import annotations

import json

from repro.lint.baseline import DEFAULT_BASELINE_NAME
from repro.lint.cli import main

BAD_RNG = """
import random

def bad():
    return random.random()
"""


def _write_bad_project(project):
    project.write("src/repro/bad.py", BAD_RNG)


def _run(project, *argv):
    return main([*argv, "--root", str(project.root), str(project.root / "src")])


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project, capsys):
        project.write("src/repro/ok.py", "X = 1\n")
        assert _run(project) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_one(self, project, capsys):
        _write_bad_project(project)
        assert _run(project) == 1
        out = capsys.readouterr().out
        assert "R001" in out and "bad.py" in out

    def test_missing_path_is_usage_error(self, project, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main([str(project.root / "nowhere")])
        assert excinfo.value.code == 2


class TestFormats:
    def test_json_format(self, project, capsys):
        _write_bad_project(project)
        assert _run(project, "--format=json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["checked_files"] == 1
        [violation] = payload["violations"]
        assert violation["rule"] == "R001"
        assert violation["path"] == "src/repro/bad.py"
        assert violation["symbol"] == "bad"

    def test_sarif_format(self, project, capsys):
        _write_bad_project(project)
        assert _run(project, "--format=sarif") == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        [run] = log["runs"]
        [result] = run["results"]
        assert result["ruleId"] == "R001"
        artifact = result["locations"][0]["physicalLocation"][
            "artifactLocation"
        ]
        assert artifact["uri"] == "src/repro/bad.py"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == [f"R00{i}" for i in range(1, 10)]

    def test_list_format(self, project, capsys):
        _write_bad_project(project)
        assert _run(project, "--list") == 1
        line = capsys.readouterr().out.strip()
        rule, location, symbol, _message = line.split("\t")
        assert rule == "R001"
        assert location.startswith("src/repro/bad.py:")
        assert symbol == "bad"


class TestRuleSelection:
    def test_rule_filter_skips_other_rules(self, project):
        _write_bad_project(project)
        assert _run(project, "--rule", "R003") == 0
        assert _run(project, "--rule", "R001") == 1

    def test_unknown_rule_is_usage_error(self, project, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            _run(project, "--rule", "R999")
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown rule 'R999'" in err
        for rule_id in (f"R00{i}" for i in range(1, 10)):
            assert rule_id in err

    def test_list_rules_prints_registry_and_exits_zero(self, capsys):
        assert main(["--list-rules"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split()[0] for line in lines] == [
            f"R00{i}" for i in range(1, 10)
        ]
        assert any("width-flow" in line for line in lines)

    def test_list_rules_needs_no_paths(self, tmp_path, capsys, monkeypatch):
        # works even where ./src does not exist (no usage error)
        monkeypatch.chdir(tmp_path)
        assert main(["--list-rules"]) == 0
        capsys.readouterr()


class TestBaselineFlags:
    def test_write_baseline_then_clean_run(self, project, capsys):
        project.write("src/repro/experiments/runner.py", "EXPERIMENTS = {}\n")
        project.write(
            "src/repro/experiments/figure1.py",
            "def run(scale=1.0):\n    return scale\n",
        )
        assert _run(project, "--rule", "R003") == 1
        capsys.readouterr()

        assert _run(project, "--rule", "R003", "--write-baseline") == 0
        assert "suppression(s)" in capsys.readouterr().out
        assert (project.root / DEFAULT_BASELINE_NAME).exists()

        assert _run(project, "--rule", "R003") == 0
        assert "baseline-suppressed" in capsys.readouterr().out

        # --no-baseline brings the findings back.
        assert _run(project, "--rule", "R003", "--no-baseline") == 1

    def test_write_baseline_refuses_determinism_findings(
        self, project, capsys
    ):
        _write_bad_project(project)
        assert _run(project, "--write-baseline") == 1
        assert "refusing to baseline" in capsys.readouterr().err
        assert not (project.root / DEFAULT_BASELINE_NAME).exists()
