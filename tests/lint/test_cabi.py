"""R008 C-ABI parity: cdef/kernel/buffer agreement fixtures."""

from __future__ import annotations

import pytest

from repro.lint.rules.cabi import parse_c_declarations

CLEAN_WRAPPER = """
import numpy as np

CDEF = '''
void kern_fill(const uint64_t *keys, int64_t n, int32_t *counts);
'''

def run(ffi, lib, n):
    keys = np.empty(n, dtype=np.uint64)
    counts = np.empty(n, dtype=np.int32)
    lib.kern_fill(
        ffi.from_buffer("uint64_t[]", keys),
        n,
        ffi.from_buffer("int32_t[]", counts),
    )
    return counts
"""

KERNEL_C = """
#include <stdint.h>

void kern_fill(const uint64_t *keys, int64_t n, int32_t *counts) {
    for (int64_t i = 0; i < n; i++) counts[i] = (int32_t)keys[i];
}
"""


def r008(report):
    return [v for v in report.violations if v.rule_id == "R008"]


class TestDeclarationParser:
    def test_parses_cdef_text(self):
        sigs = parse_c_declarations(
            "void f(const uint64_t *keys, int64_t n);\n"
            "int64_t g(int32_t *out, int32_t banks);"
        )
        assert set(sigs) == {"f", "g"}
        f = sigs["f"]
        assert f.ret == "void"
        assert [(p.base, p.pointer) for p in f.params] == [
            ("uint64_t", True),
            ("int64_t", False),
        ]
        assert f.params[0].name == "keys"

    def test_parses_definitions_with_bodies(self):
        sigs = parse_c_declarations(KERNEL_C)
        assert "kern_fill" in sigs
        assert len(sigs["kern_fill"].params) == 3

    def test_void_params(self):
        sigs = parse_c_declarations("int64_t ticks(void);")
        assert sigs["ticks"].params == ()


class TestCleanWrapper:
    def test_matching_wrapper_and_kernel_lint_clean(self, project):
        project.write("src/wrapper.py", CLEAN_WRAPPER)
        project.write("src/_kern.c", KERNEL_C)
        assert r008(project.lint(["R008"])) == []

    def test_real_native_module_lints_clean(self, project):
        # the real backend is the rule's raison d'être: 18 buffer sites
        from pathlib import Path

        native = (
            Path(__file__).resolve().parents[2] / "src/repro/sim/native.py"
        )
        source = native.read_text(encoding="utf-8")
        assert source.count("from_buffer") == 18
        project.write("src/fixture_native.py", source)
        kernel = native.with_name("_native_kernel.c")
        project.write("src/_native_kernel.c", kernel.read_text())
        assert r008(project.lint(["R008"])) == []


class TestMistypedBuffer:
    def test_wrong_declared_type_fires(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                'ffi.from_buffer("int32_t[]", counts)',
                'ffi.from_buffer("int64_t[]", counts)',
            ),
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "int64_t" in violations[0].message
        assert violations[0].symbol == "run"

    def test_dtype_mismatch_behind_matching_declaration_fires(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                "keys = np.empty(n, dtype=np.uint64)",
                "keys = np.empty(n, dtype=np.uint32)",
            ),
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "reinterprets a uint32 array" in violations[0].message

    def test_swapped_buffer_arguments_fire(self, project):
        swapped = CLEAN_WRAPPER.replace(
            'ffi.from_buffer("uint64_t[]", keys),\n        n,\n'
            '        ffi.from_buffer("int32_t[]", counts),',
            'ffi.from_buffer("int32_t[]", counts),\n        n,\n'
            '        ffi.from_buffer("uint64_t[]", keys),',
        )
        assert swapped != CLEAN_WRAPPER
        project.write("src/wrapper.py", swapped)
        assert len(r008(project.lint(["R008"]))) == 2

    def test_arity_mismatch_fires(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace("        n,\n", ""),
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "takes 3 arguments but this call passes 2" in (
            violations[0].message
        )

    def test_buffer_passed_to_scalar_fires(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                "        n,\n", '        ffi.from_buffer("int64_t[]", keys),\n'
            ),
        )
        violations = r008(project.lint(["R008"]))
        assert any("argument order is off" in v.message for v in violations)


class TestKernelParity:
    def test_cdef_drift_from_kernel_fires(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                "const uint64_t *keys, int64_t n",
                "const uint64_t *keys, int32_t n",
            ),
        )
        project.write("src/_kern.c", KERNEL_C)
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "int64_t in the kernel but int32_t in the cdef" in (
            violations[0].message
        )

    def test_missing_kernel_definition_fires(self, project):
        project.write("src/wrapper.py", CLEAN_WRAPPER)
        project.write(
            "src/_kern.c", KERNEL_C.replace("kern_fill", "kern_other")
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "no sibling .c file defines it" in violations[0].message

    def test_no_sibling_kernel_is_silent(self, project):
        # cdef-only wrappers (kernel shipped elsewhere) make no claim
        project.write("src/wrapper.py", CLEAN_WRAPPER)
        assert r008(project.lint(["R008"])) == []


class TestBufferFlow:
    def test_ffi_null_satisfies_pointer(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                'ffi.from_buffer("int32_t[]", counts)', "ffi.NULL"
            ),
        )
        assert r008(project.lint(["R008"])) == []

    def test_branch_defined_buffer_name_is_traced(self, project):
        project.write(
            "src/wrapper.py",
            """
            import numpy as np

            CDEF = '''
            void kern_fill(const uint64_t *keys, int64_t n, int32_t *counts);
            '''

            def run(ffi, lib, n, want_counts):
                keys = np.empty(n, dtype=np.uint64)
                if want_counts:
                    counts = np.empty(n, dtype=np.int32)
                    count_buffer = ffi.from_buffer("int64_t[]", counts)
                else:
                    count_buffer = ffi.NULL
                lib.kern_fill(
                    ffi.from_buffer("uint64_t[]", keys), n, count_buffer
                )
            """,
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "declared 'int64_t[]'" in violations[0].message

    def test_caller_seeded_param_dtype(self, project):
        # the buffer's array is a *parameter*; its dtype only exists at
        # the call site one function up — exactly the simulate_native /
        # run_table_kernel split in the real backend
        project.write(
            "src/wrapper.py",
            """
            import numpy as np

            CDEF = '''
            void kern_fill(const int64_t *values, int64_t n);
            '''

            def kernel_call(ffi, lib, values, n):
                lib.kern_fill(ffi.from_buffer("int64_t[]", values), n)

            def driver(ffi, lib, parts, n):
                values = np.concatenate(
                    [np.asarray(p, dtype=np.int32) for p in parts]
                )
                kernel_call(ffi, lib, values, n)
            """,
        )
        violations = r008(project.lint(["R008"]))
        assert len(violations) == 1
        assert "reinterprets a int32 array as int64_t[]" in (
            violations[0].message
        )

    def test_pragma_silences(self, project):
        project.write(
            "src/wrapper.py",
            CLEAN_WRAPPER.replace(
                'ffi.from_buffer("int32_t[]", counts),',
                'ffi.from_buffer("int64_t[]", counts),'
                "  # repro-lint: disable=R008",
            ),
        )
        assert r008(project.lint(["R008"])) == []


class TestBaselinePolicy:
    def test_baseline_refuses_r008(self):
        from repro.lint.baseline import NEVER_BASELINED

        assert "R008" in NEVER_BASELINED
