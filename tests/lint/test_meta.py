"""Meta test: the real repository lints clean, with no grandfathering.

This is the acceptance gate in executable form — if a change introduces
an unseeded RNG, an unmasked index function, a figure module outside
the runner contract, an untested vectorized entry point, or a cache-key
gap, this test fails locally before CI does.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint.baseline import DEFAULT_BASELINE_NAME
from repro.lint.engine import ProjectContext, lint_paths
from repro.lint.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestRealTree:
    def test_src_lints_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src"],
            all_rules(),
            project=ProjectContext(REPO_ROOT),
        )
        rendered = "\n".join(v.render() for v in report.violations)
        assert report.clean, f"repro-lint found violations:\n{rendered}"
        assert report.checked_files > 50

    def test_no_baseline_suppressions_in_repo(self):
        # The acceptance policy for this repository is stronger than the
        # tool requires: zero baseline entries, not just zero new ones.
        assert not (REPO_ROOT / DEFAULT_BASELINE_NAME).exists()
