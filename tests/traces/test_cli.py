"""Tests for the repro-trace command-line tool."""

import pytest

from repro.traces.cli import main


@pytest.fixture()
def generated(tmp_path):
    path = tmp_path / "verilog.npz"
    assert main(["generate", "verilog", str(path), "--scale", "0.05"]) == 0
    return path


class TestGenerate:
    def test_writes_trace(self, generated, capsys):
        assert generated.exists()

    def test_unknown_benchmark(self, tmp_path):
        with pytest.raises(KeyError):
            main(["generate", "doom", str(tmp_path / "x.npz")])


class TestInfo:
    def test_prints_statistics(self, generated, capsys):
        capsys.readouterr()
        assert main(["info", str(generated)]) == 0
        out = capsys.readouterr().out
        assert "dynamic" in out
        assert "h=4" in out
        assert "h=12" in out

    def test_custom_history(self, generated, capsys):
        capsys.readouterr()
        assert main(["info", str(generated), "--history", "6"]) == 0
        out = capsys.readouterr().out
        assert "h=6" in out
        assert "h=12" not in out


class TestConvert:
    def test_npz_to_text_roundtrip(self, generated, tmp_path, capsys):
        text_path = tmp_path / "trace.txt"
        assert main(["convert", str(generated), str(text_path)]) == 0
        back_path = tmp_path / "back.npz"
        assert main(["convert", str(text_path), str(back_path)]) == 0

        from repro.traces.io import load_trace

        import numpy as np

        original = load_trace(generated)
        back = load_trace(back_path)
        assert np.array_equal(original.pcs, back.pcs)
        assert np.array_equal(original.takens, back.takens)


class TestSimulate:
    def test_runs_specs(self, generated, capsys):
        capsys.readouterr()
        assert (
            main(
                [
                    "simulate",
                    str(generated),
                    "bimodal:256",
                    "gskew:3x128:h4:partial",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "bimodal:256" in out
        assert "gskew:3x128:h4:partial" in out
        assert "%" in out


class TestCache:
    def test_reports_directory_and_entries(self, tmp_path, monkeypatch, capsys):
        from repro.traces.cache import CACHE_ENV_VAR, generate_trace_cached
        from repro.traces.synthetic.workloads import ibs_workload

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        generate_trace_cached(ibs_workload("verilog").scaled(0.02))
        capsys.readouterr()
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "entries    : 1" in out

    def test_clear_empties_directory(self, tmp_path, monkeypatch, capsys):
        from repro.traces.cache import CACHE_ENV_VAR, generate_trace_cached
        from repro.traces.synthetic.workloads import ibs_workload

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        generate_trace_cached(ibs_workload("verilog").scaled(0.02))
        assert main(["cache", "--clear"]) == 0
        assert not list(tmp_path.glob("*.npz"))

    def test_disabled_cache_reported(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "off")
        capsys.readouterr()
        assert main(["cache"]) == 0
        assert "disabled" in capsys.readouterr().out
