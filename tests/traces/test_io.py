"""Tests for trace serialisation round-trips."""

import numpy as np
import pytest

from repro.traces.io import (
    load_trace,
    load_trace_text,
    save_trace,
    save_trace_text,
)
from repro.traces.trace import BranchRecord, Trace


def _trace():
    return Trace.from_records(
        [
            BranchRecord(pc=0x400100, taken=True, conditional=True),
            BranchRecord(
                pc=0x400104, taken=True, conditional=False, target=0xABC0
            ),
            BranchRecord(pc=0x80000010, taken=False, conditional=True),
        ],
        name="roundtrip",
        seed=33,
    )


class TestBinaryFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.npz"
        trace = _trace()
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "roundtrip"
        assert loaded.seed == 33
        assert list(loaded) == list(trace)

    def test_extension_added_by_numpy_handled(self, tmp_path):
        path = tmp_path / "trace"  # numpy will write trace.npz
        save_trace(_trace(), path)
        loaded = load_trace(path)
        assert loaded.name == "roundtrip"

    def test_synthetic_trace_roundtrip(self, tmp_path, tiny_trace):
        path = tmp_path / "tiny.npz"
        save_trace(tiny_trace, path)
        loaded = load_trace(path)
        assert np.array_equal(loaded.pcs, tiny_trace.pcs)
        assert np.array_equal(loaded.takens, tiny_trace.takens)
        assert np.array_equal(loaded.conditionals, tiny_trace.conditionals)


class TestTextFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        trace = _trace()
        save_trace_text(trace, path)
        loaded = load_trace_text(path)
        assert loaded.name == "roundtrip"
        assert loaded.seed == 33
        assert list(loaded) == list(trace)

    def test_header_optional(self, tmp_path):
        path = tmp_path / "bare.txt"
        path.write_text("0x100 1 1 0x0\n0x104 0 1 0x0\n")
        loaded = load_trace_text(path)
        assert len(loaded) == 2
        assert loaded.name == "bare"
        assert loaded.seed is None

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "gaps.txt"
        path.write_text("\n0x100 1 1 0x0\n\n")
        assert len(load_trace_text(path)) == 1

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0x100 1 1\n")
        with pytest.raises(ValueError, match="expected 4 fields"):
            load_trace_text(path)
