"""Tests for the content-addressed on-disk trace cache."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.traces.cache import (
    CACHE_ENV_VAR,
    cache_dir,
    cache_stats,
    config_fingerprint,
    generate_trace_cached,
    reset_cache_stats,
    trace_cache_path,
)
from repro.resilience.faults import FAULTS_ENV_VAR, reset_faults
from repro.traces.synthetic.behavior import BehaviorMix
from repro.traces.synthetic.generator import WorkloadConfig, generate_trace


@pytest.fixture()
def cache_in_tmp(tmp_path, monkeypatch):
    """Point the cache at a fresh directory and zero the counters."""
    monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
    reset_cache_stats()
    yield tmp_path
    reset_cache_stats()


def _config(**overrides) -> WorkloadConfig:
    defaults = dict(
        name="cache-test",
        seed=11,
        length=3_000,
        processes=1,
        static_branches_per_process=60,
        procedures_per_process=6,
        kernel_static_branches=0,
    )
    defaults.update(overrides)
    return WorkloadConfig(**defaults)


def _assert_traces_equal(a, b):
    assert a.name == b.name and a.seed == b.seed
    for column in ("pcs", "takens", "conditionals", "targets"):
        assert np.array_equal(getattr(a, column), getattr(b, column))


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert config_fingerprint(_config()) == config_fingerprint(_config())

    def test_sensitive_to_every_layer(self):
        base = config_fingerprint(_config())
        assert config_fingerprint(_config(seed=12)) != base
        assert config_fingerprint(_config(length=3_001)) != base
        # Scale changes length, hence the fingerprint.
        assert config_fingerprint(_config().scaled(0.5)) != base
        # Nested non-dataclass (BehaviorMix) parameters count too.
        tweaked = _config(mix=BehaviorMix(bias_strength=0.99))
        assert config_fingerprint(tweaked) != base
        # Nested dataclass (SchedulerConfig) parameters count too.
        scheduler = dataclasses.replace(_config().scheduler, mean_quantum=99)
        assert config_fingerprint(_config(scheduler=scheduler)) != base


class TestCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert cache_dir() == tmp_path

    @pytest.mark.parametrize("value", ["0", "off", "NONE", " disabled "])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert cache_dir() is None
        assert trace_cache_path(_config()) is None

    def test_default_under_xdg_cache(self, monkeypatch, tmp_path):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert cache_dir() == tmp_path / "repro" / "traces"


class TestGenerateTraceCached:
    def test_miss_then_hit_round_trips_exactly(self, cache_in_tmp):
        config = _config()
        first = generate_trace_cached(config)
        assert cache_stats() == {
            "hits": 0, "misses": 1, "stores": 1, "errors": 0,
        }
        second = generate_trace_cached(config)
        assert cache_stats()["hits"] == 1
        _assert_traces_equal(first, second)
        _assert_traces_equal(second, generate_trace(config))

    def test_distinct_configs_get_distinct_entries(self, cache_in_tmp):
        generate_trace_cached(_config())
        generate_trace_cached(_config(seed=12))
        assert cache_stats()["misses"] == 2
        assert len(list(cache_in_tmp.glob("*.npz"))) == 2

    def test_truncated_entry_regenerates(self, cache_in_tmp):
        config = _config()
        expected = generate_trace_cached(config)
        path = trace_cache_path(config)
        path.write_bytes(path.read_bytes()[:32])  # truncate the npz
        reloaded = generate_trace_cached(config)
        _assert_traces_equal(reloaded, expected)
        stats = cache_stats()
        assert stats["errors"] == 1 and stats["misses"] == 2
        # The corrupt file was replaced by a fresh, loadable entry.
        assert cache_stats()["stores"] == 2
        generate_trace_cached(config)
        assert cache_stats()["hits"] == 1

    def test_bit_flipped_entry_regenerates(self, cache_in_tmp):
        """Payload damage (not just truncation) is caught by the zip CRC."""
        config = _config()
        expected = generate_trace_cached(config)
        path = trace_cache_path(config)
        blob = bytearray(path.read_bytes())
        # Flip bits deep inside the array payload, far from the zip
        # directory, so only the CRC check can notice.
        middle = len(blob) // 2
        for offset in range(middle, middle + 8):
            blob[offset] ^= 0xFF
        path.write_bytes(bytes(blob))
        reloaded = generate_trace_cached(config)
        _assert_traces_equal(reloaded, expected)
        stats = cache_stats()
        assert stats["errors"] == 1 and stats["misses"] == 2
        # The damaged file was dropped and replaced by a loadable entry.
        generate_trace_cached(config)
        assert cache_stats()["hits"] == 1


class TestFaultInjection:
    """The ``cache-read`` / ``cache-write`` sites drive the same paths."""

    @pytest.fixture(autouse=True)
    def _clean_faults(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        reset_faults()
        yield
        reset_faults()

    def test_injected_read_fault_counts_and_regenerates(
        self, cache_in_tmp, monkeypatch
    ):
        config = _config()
        expected = generate_trace_cached(config)
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache-read@1")
        reset_faults()
        reloaded = generate_trace_cached(config)
        _assert_traces_equal(reloaded, expected)
        stats = cache_stats()
        assert stats["errors"] == 1 and stats["misses"] == 2
        # The fault window is consumed; the regenerated entry now hits.
        generate_trace_cached(config)
        assert cache_stats()["hits"] == 1

    def test_injected_write_corruption_detected_on_next_read(
        self, cache_in_tmp, monkeypatch
    ):
        config = _config()
        monkeypatch.setenv(FAULTS_ENV_VAR, "cache-write@1")
        reset_faults()
        first = generate_trace_cached(config)  # publishes a corrupt entry
        _assert_traces_equal(first, generate_trace(config))
        monkeypatch.delenv(FAULTS_ENV_VAR)
        reset_faults()
        second = generate_trace_cached(config)
        _assert_traces_equal(second, first)
        stats = cache_stats()
        # The poisoned entry was detected, dropped and re-stored clean.
        assert stats["errors"] == 1
        assert stats["misses"] == 2 and stats["stores"] == 2
        generate_trace_cached(config)
        assert cache_stats()["hits"] == 1

    def test_disabled_cache_writes_nothing(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, "off")
        reset_cache_stats()
        trace = generate_trace_cached(_config())
        _assert_traces_equal(trace, generate_trace(_config()))
        assert cache_stats() == {
            "hits": 0, "misses": 0, "stores": 0, "errors": 0,
        }
        assert not list(tmp_path.iterdir())

    def test_no_temp_files_left_behind(self, cache_in_tmp):
        generate_trace_cached(_config())
        assert not list(cache_in_tmp.glob("*.tmp*"))
        assert not list(cache_in_tmp.glob(".*"))
