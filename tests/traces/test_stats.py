"""Tests for trace statistics (Tables 1/2 quantities)."""

import pytest

from repro.traces.stats import bias_density, substream_stats, trace_counts
from repro.traces.trace import BranchRecord, Trace


def _trace():
    records = []
    # Branch A: always taken, 4 times; branch B: alternating, 4 times.
    for step in range(4):
        records.append(BranchRecord(pc=0x100, taken=True, conditional=True))
        records.append(
            BranchRecord(pc=0x104, taken=step % 2 == 0, conditional=True)
        )
    records.append(
        BranchRecord(pc=0x200, taken=True, conditional=False)
    )
    return Trace.from_records(records, name="stats")


class TestTraceCounts:
    def test_counts(self):
        counts = trace_counts(_trace())
        assert counts.name == "stats"
        assert counts.dynamic == 8
        assert counts.static == 2
        assert counts.events == 9
        assert counts.taken_ratio == pytest.approx(6 / 8)


class TestSubstreamStats:
    def test_zero_history_one_substream_per_branch(self):
        stats = substream_stats(_trace(), 0)
        assert stats.substreams == 2
        assert stats.static == 2
        assert stats.substream_ratio == 1.0

    def test_history_multiplies_substreams(self):
        stats = substream_stats(_trace(), 4)
        assert stats.substream_ratio > 1.0
        assert stats.dynamic == 8

    def test_compulsory_ratio(self):
        stats = substream_stats(_trace(), 0)
        assert stats.compulsory_ratio == pytest.approx(2 / 8)

    def test_monotone_in_history(self, tiny_trace):
        counts = [
            substream_stats(tiny_trace, h).substreams for h in (0, 2, 4, 8)
        ]
        assert counts == sorted(counts)


class TestBiasDensity:
    def test_all_taken(self):
        trace = Trace.from_records(
            [BranchRecord(pc=0x100, taken=True)] * 10
        )
        density = bias_density(trace, 0)
        assert density["static_taken_bias"] == 1.0
        assert density["dynamic_taken_ratio"] == 1.0

    def test_mixed(self):
        density = bias_density(_trace(), 0)
        # Substream A is taken-biased; B is 50/50 (not strictly majority
        # taken since 2 of 4 -> not > half).
        assert density["static_taken_bias"] == pytest.approx(0.5)
        assert density["dynamic_taken_ratio"] == pytest.approx(6 / 8)

    def test_empty(self):
        trace = Trace.from_columns([], [], [])
        density = bias_density(trace, 4)
        assert density["static_taken_bias"] == 0.0
