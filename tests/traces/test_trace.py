"""Tests for the Trace data type."""

import numpy as np
import pytest

from repro.traces.trace import BranchRecord, Trace


def _records():
    return [
        BranchRecord(pc=0x400100, taken=True, conditional=True),
        BranchRecord(pc=0x400104, taken=True, conditional=False, target=0x500000),
        BranchRecord(pc=0x400108, taken=False, conditional=True),
        BranchRecord(pc=0x400100, taken=False, conditional=True),
    ]


class TestConstruction:
    def test_from_records_roundtrip(self):
        trace = Trace.from_records(_records(), name="t", seed=9)
        assert len(trace) == 4
        assert trace[0] == _records()[0]
        assert trace[1].target == 0x500000
        assert trace.name == "t"
        assert trace.seed == 9

    def test_from_columns(self):
        trace = Trace.from_columns(
            [0x100, 0x104], [1, 0], [1, 1], name="cols"
        )
        assert trace[1] == BranchRecord(pc=0x104, taken=False)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trace(
                np.array([1, 2], dtype=np.uint64),
                np.array([1], dtype=np.uint8),
                np.array([1, 1], dtype=np.uint8),
            )
        with pytest.raises(ValueError):
            Trace(
                np.array([1], dtype=np.uint64),
                np.array([1], dtype=np.uint8),
                np.array([1], dtype=np.uint8),
                np.array([1, 2], dtype=np.uint64),
            )

    def test_iteration(self):
        trace = Trace.from_records(_records())
        assert list(trace) == _records()


class TestViews:
    def test_columns_cached_and_plain_ints(self):
        trace = Trace.from_records(_records())
        pcs, takens, conditionals, targets = trace.columns()
        assert pcs is trace.columns()[0]  # cached
        assert isinstance(pcs[0], int)
        assert takens == [1, 1, 0, 0]
        assert conditionals == [1, 0, 1, 1]

    def test_head(self):
        trace = Trace.from_records(_records(), name="t")
        head = trace.head(2)
        assert len(head) == 2
        assert head[0].pc == 0x400100
        assert "t[:2]" in head.name


class TestSummary:
    def test_conditional_count(self):
        trace = Trace.from_records(_records())
        assert trace.conditional_count == 3

    def test_static_conditional_count(self):
        trace = Trace.from_records(_records())
        assert trace.static_conditional_count == 2  # 0x400100 repeats

    def test_taken_ratio_over_conditionals_only(self):
        trace = Trace.from_records(_records())
        assert trace.taken_ratio == pytest.approx(1 / 3)

    def test_empty_trace(self):
        trace = Trace.from_columns([], [], [])
        assert trace.conditional_count == 0
        assert trace.taken_ratio == 0.0
        assert trace.static_conditional_count == 0
