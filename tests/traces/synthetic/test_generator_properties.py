"""Property-based tests over the whole synthetic-workload pipeline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.synthetic.behavior import BehaviorMix
from repro.traces.synthetic.generator import WorkloadConfig, generate_trace
from repro.traces.synthetic.kernel import SchedulerConfig

configs = st.builds(
    WorkloadConfig,
    name=st.just("prop"),
    seed=st.integers(min_value=1, max_value=10_000),
    length=st.integers(min_value=200, max_value=4_000),
    processes=st.integers(min_value=1, max_value=4),
    static_branches_per_process=st.integers(min_value=20, max_value=120),
    procedures_per_process=st.integers(min_value=2, max_value=12),
    mix=st.builds(
        BehaviorMix,
        bias_strength=st.floats(min_value=0.85, max_value=0.99),
        hard_fraction=st.floats(min_value=0.0, max_value=0.2),
        loop_trip_mean=st.integers(min_value=4, max_value=60),
    ),
    kernel_static_branches=st.sampled_from([0, 60, 150]),
    scheduler=st.builds(
        SchedulerConfig,
        mean_quantum=st.integers(min_value=50, max_value=2000),
        kernel_share=st.sampled_from([0.0, 0.1, 0.3]),
        mean_kernel_burst=st.integers(min_value=10, max_value=200),
        interrupt_rate=st.sampled_from([0.0, 0.001]),
    ),
)


@given(configs)
@settings(max_examples=25, deadline=None)
def test_trace_has_requested_length(config):
    assert len(generate_trace(config)) == config.length


@given(configs)
@settings(max_examples=15, deadline=None)
def test_generation_is_deterministic(config):
    import numpy as np

    a = generate_trace(config)
    b = generate_trace(config)
    assert np.array_equal(a.pcs, b.pcs)
    assert np.array_equal(a.takens, b.takens)
    assert np.array_equal(a.conditionals, b.conditionals)


@given(configs)
@settings(max_examples=20, deadline=None)
def test_event_wellformedness(config):
    trace = generate_trace(config)
    pcs, takens, conditionals, _ = trace.columns()
    for pc, taken, conditional in zip(pcs, takens, conditionals):
        assert pc % 4 == 0
        assert taken in (0, 1)
        assert conditional in (0, 1)


@given(configs)
@settings(max_examples=15, deadline=None)
def test_conditional_fraction_sane(config):
    trace = generate_trace(config)
    if len(trace) < 500:
        return
    fraction = trace.conditional_count / len(trace)
    # Upper bound leaves room for the loop-heavy corner: with
    # loop_trip_mean=60 nearly every event is a conditional loop branch
    # and only calls/returns are unconditional (~1/60 of events).
    assert 0.25 < fraction < 0.995


@given(configs)
@settings(max_examples=15, deadline=None)
def test_segments_match_process_count(config):
    trace = generate_trace(config)
    user_segments = {
        int(pc) >> 24 for pc in trace.pcs if pc < 0x8000_0000
    }
    assert len(user_segments) <= config.processes
    kernel_present = bool((trace.pcs >= 0x8000_0000).any())
    kernel_expected = (
        config.kernel_static_branches > 0
        and config.scheduler.kernel_share > 0
    )
    if not kernel_expected:
        assert not kernel_present


@given(configs, st.floats(min_value=0.1, max_value=2.0))
@settings(max_examples=10, deadline=None)
def test_scaled_changes_only_length(config, factor):
    scaled = config.scaled(factor)
    assert scaled.length == max(1, int(config.length * factor))
    assert scaled.seed == config.seed
    assert scaled.processes == config.processes
