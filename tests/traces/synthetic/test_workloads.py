"""Tests for trace generation and the IBS-clone registry."""

import numpy as np
import pytest

from repro.traces.synthetic.generator import WorkloadConfig, generate_trace
from repro.traces.synthetic.workloads import (
    IBS_BENCHMARKS,
    IBS_EXTRA_BENCHMARKS,
    clear_trace_cache,
    ibs_trace,
    ibs_workload,
)


class TestGenerateTrace:
    def test_deterministic(self):
        config = WorkloadConfig(name="d", seed=5, length=6000, processes=2)
        a = generate_trace(config)
        b = generate_trace(config)
        assert np.array_equal(a.pcs, b.pcs)
        assert np.array_equal(a.takens, b.takens)

    def test_length_respected(self):
        trace = generate_trace(WorkloadConfig(seed=1, length=3000))
        assert len(trace) == 3000

    def test_kernel_addresses_present(self):
        trace = generate_trace(
            WorkloadConfig(seed=2, length=20_000, kernel_static_branches=200)
        )
        assert (trace.pcs >= 0x8000_0000).any()

    def test_processes_have_disjoint_segments(self):
        trace = generate_trace(
            WorkloadConfig(seed=3, length=20_000, processes=3)
        )
        user = trace.pcs[trace.pcs < 0x8000_0000]
        segments = {int(pc) >> 24 for pc in user}
        assert len(segments) == 3

    def test_scaled(self):
        config = WorkloadConfig(seed=4, length=10_000)
        assert config.scaled(0.5).length == 5000
        assert config.scaled(2.0).length == 20_000
        with pytest.raises(ValueError):
            config.scaled(0.0)


class TestRegistry:
    def test_all_benchmarks_defined(self):
        for name in IBS_BENCHMARKS + IBS_EXTRA_BENCHMARKS:
            assert ibs_workload(name).name == name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown IBS benchmark"):
            ibs_workload("doom")

    def test_trace_cached(self):
        clear_trace_cache()
        a = ibs_trace("verilog", scale=0.05)
        b = ibs_trace("verilog", scale=0.05)
        assert a is b
        clear_trace_cache()
        c = ibs_trace("verilog", scale=0.05)
        assert c is not a
        assert np.array_equal(a.pcs, c.pcs)  # still deterministic

    def test_scale_shrinks(self):
        clear_trace_cache()
        small = ibs_trace("verilog", scale=0.05)
        assert len(small) == int(ibs_workload("verilog").length * 0.05)

    def test_relative_magnitudes_match_paper(self):
        """Table 1 orderings that drive the experiments."""
        configs = {name: ibs_workload(name) for name in IBS_BENCHMARKS}
        # nroff runs longest, verilog shortest.
        assert configs["nroff"].length == max(
            c.length for c in configs.values()
        )
        assert configs["verilog"].length == min(
            c.length for c in configs.values()
        )
        # real_gcc has the largest static footprint.
        static = {
            name: c.processes * c.static_branches_per_process
            for name, c in configs.items()
        }
        assert static["real_gcc"] == max(static.values())


class TestSpecPresets:
    def test_registry_has_spec_presets(self):
        from repro.traces.synthetic.workloads import SPEC_BENCHMARKS

        for name in SPEC_BENCHMARKS:
            config = ibs_workload(name)
            assert config.processes == 1
            assert config.scheduler.kernel_share == 0.0

    def test_spec_traces_single_segment_no_kernel(self):
        from repro.traces.synthetic.workloads import SPEC_BENCHMARKS

        for name in SPEC_BENCHMARKS:
            trace = ibs_trace(name, scale=0.1)
            assert not (trace.pcs >= 0x8000_0000).any()
            segments = {int(pc) >> 24 for pc in trace.pcs}
            assert len(segments) == 1

    def test_spec_fp_is_the_most_predictable(self):
        """The FP-like preset is loop-dominated and strongly biased —
        it must be markedly easier than the compiler-like preset."""
        from repro.sim import make_predictor, simulate

        fp = simulate(
            make_predictor("gshare:1k:h4"), ibs_trace("spec_fp_like", 0.3)
        )
        compiler = simulate(
            make_predictor("gshare:1k:h4"),
            ibs_trace("spec_compiler_like", 0.3),
        )
        assert fp.misprediction_ratio < compiler.misprediction_ratio
