"""Tests for the structured program model and executor."""

from repro.traces.synthetic.behavior import BehaviorMix
from repro.traces.synthetic.cfg import (
    BranchNode,
    LoopNode,
    ProgramConfig,
    ProgramExecutor,
    build_program,
)


def _config(**overrides):
    defaults = dict(
        static_branches=120,
        procedures=10,
        base_address=0x0040_0000,
        mix=BehaviorMix(),
        name="prog",
    )
    defaults.update(overrides)
    return ProgramConfig(**defaults)


class TestBuilder:
    def test_deterministic(self):
        a = build_program(_config(), seed=5)
        b = build_program(_config(), seed=5)
        assert a.static_branch_count == b.static_branch_count
        assert [p.base_address for p in a.procedures] == [
            p.base_address for p in b.procedures
        ]

    def test_seed_changes_program(self):
        a = build_program(_config(), seed=5)
        b = build_program(_config(), seed=6)
        assert [p.base_address for p in a.procedures] != [
            p.base_address for p in b.procedures
        ]

    def test_static_branch_count_near_target(self):
        program = build_program(_config(static_branches=200), seed=1)
        # The cost cap may leave some budget unused, but the program must
        # be in the right ballpark.
        assert 60 <= program.static_branch_count <= 260

    def test_main_is_first_procedure(self):
        program = build_program(_config(), seed=2)
        assert program.main is program.procedures[0]
        assert program.main.name.endswith(".main")

    def test_addresses_word_aligned_and_in_segment(self):
        base = 0x0100_0000
        program = build_program(_config(base_address=base), seed=3)
        for procedure in program.procedures:
            assert procedure.base_address % 4 == 0
            assert procedure.base_address >= base
            stack = list(procedure.body)
            while stack:
                node = stack.pop()
                if isinstance(node, BranchNode):
                    assert node.pc % 4 == 0
                    stack.extend(node.then_body)
                    stack.extend(node.else_body)
                elif isinstance(node, LoopNode):
                    assert node.pc % 4 == 0
                    stack.extend(node.body)

    def test_unique_branch_pcs(self):
        program = build_program(_config(), seed=4)
        pcs = []
        for procedure in program.procedures:
            stack = list(procedure.body)
            while stack:
                node = stack.pop()
                if isinstance(node, BranchNode):
                    pcs.append(node.pc)
                    stack.extend(node.then_body)
                    stack.extend(node.else_body)
                elif isinstance(node, LoopNode):
                    pcs.append(node.pc)
                    stack.extend(node.body)
        assert len(pcs) == len(set(pcs))

    def test_expected_cost_positive_and_bounded(self):
        program = build_program(_config(), seed=7)
        for procedure in program.procedures[1:]:  # main excluded
            assert 0 < procedure.expected_cost < 5_000


class TestExecutor:
    def test_deterministic_stream(self):
        program = build_program(_config(), seed=8)
        a = ProgramExecutor(program, seed=1).take(2000)
        b = ProgramExecutor(program, seed=1).take(2000)
        assert a == b

    def test_executor_seed_changes_stream(self):
        program = build_program(_config(), seed=8)
        a = ProgramExecutor(program, seed=1).take(2000)
        b = ProgramExecutor(program, seed=2).take(2000)
        assert a != b

    def test_events_well_formed(self):
        program = build_program(_config(), seed=9)
        events = ProgramExecutor(program, seed=3).take(3000)
        assert len(events) == 3000
        for pc, taken, conditional, target in events:
            assert pc % 4 == 0
            assert isinstance(taken, bool)
            assert isinstance(conditional, bool)
            assert target >= 0

    def test_mixes_conditional_and_unconditional(self):
        program = build_program(_config(), seed=10)
        events = ProgramExecutor(program, seed=4).take(3000)
        conditionals = sum(1 for e in events if e[2])
        assert 0.3 < conditionals / len(events) < 0.95

    def test_main_iterations_complete(self):
        """Cost bounding must keep one main iteration well under a
        typical per-process trace share."""
        program = build_program(_config(), seed=11)
        events = ProgramExecutor(program, seed=5).take(60_000)
        returns = sum(
            1 for e in events if e[0] == program.main.return_pc
        )
        assert returns >= 2

    def test_covers_most_static_branches(self):
        program = build_program(_config(), seed=12)
        events = ProgramExecutor(program, seed=6).take(60_000)
        executed = {e[0] for e in events if e[2]}
        assert len(executed) >= program.static_branch_count * 0.4

    def test_infinite_stream(self):
        program = build_program(_config(static_branches=20, procedures=3), seed=13)
        executor = ProgramExecutor(program, seed=7)
        # Far more events than one main iteration: must not exhaust.
        assert len(executor.take(30_000)) == 30_000
