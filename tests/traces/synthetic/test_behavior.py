"""Tests for the branch-behaviour models."""

import random

import pytest

from repro.traces.synthetic.behavior import (
    BehaviorMix,
    BiasedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    MarkovBehavior,
    PatternBehavior,
)


def _outcomes(behavior, count, seed=1, history_fn=lambda i: 0):
    rng = random.Random(seed)
    return [behavior.next_outcome(rng, history_fn(i)) for i in range(count)]


class TestBiasedBehavior:
    def test_bias_statistics(self):
        outcomes = _outcomes(BiasedBehavior(0.9), 4000)
        assert 0.85 < sum(outcomes) / len(outcomes) < 0.95

    def test_extremes(self):
        assert all(_outcomes(BiasedBehavior(1.0), 100))
        assert not any(_outcomes(BiasedBehavior(0.0), 100))

    def test_validation(self):
        with pytest.raises(ValueError):
            BiasedBehavior(1.5)


class TestLoopBehavior:
    def test_trip_pattern(self):
        outcomes = _outcomes(LoopBehavior(4), 12)
        assert outcomes == [True, True, True, False] * 3

    def test_trip_one_never_taken(self):
        assert _outcomes(LoopBehavior(1), 5) == [False] * 5

    def test_jitter_rearms_within_bounds(self):
        behavior = LoopBehavior(6, jitter=2)
        outcomes = _outcomes(behavior, 300, seed=5)
        runs = []
        run = 0
        for taken in outcomes:
            run += 1
            if not taken:
                runs.append(run)
                run = 0
        assert runs and all(4 <= r <= 8 for r in runs)

    def test_clone_resets_state(self):
        behavior = LoopBehavior(4)
        _outcomes(behavior, 2)  # advance mid-loop
        clone = behavior.clone()
        assert _outcomes(clone, 4) == [True, True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            LoopBehavior(0)
        with pytest.raises(ValueError):
            LoopBehavior(4, jitter=-1)


class TestPatternBehavior:
    def test_cycles(self):
        pattern = [True, False, False]
        outcomes = _outcomes(PatternBehavior(pattern), 9)
        assert outcomes == pattern * 3

    def test_clone_resets_position(self):
        behavior = PatternBehavior([True, False])
        _outcomes(behavior, 1)
        assert _outcomes(behavior.clone(), 2) == [True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            PatternBehavior([])


class TestCorrelatedBehavior:
    def test_deterministic_given_history_without_noise(self):
        behavior = CorrelatedBehavior(4, seed=77, noise=0.0)
        a = _outcomes(behavior, 50, history_fn=lambda i: i % 16)
        b = _outcomes(
            CorrelatedBehavior(4, seed=77, noise=0.0),
            50,
            history_fn=lambda i: i % 16,
        )
        assert a == b

    def test_history_drives_outcome(self):
        behavior = CorrelatedBehavior(4, seed=3, noise=0.0)
        rng = random.Random(0)
        by_history = {
            h: behavior.next_outcome(rng, h) for h in range(16)
        }
        assert len(set(by_history.values())) == 2  # both outcomes occur

    def test_noise_rate(self):
        behavior = CorrelatedBehavior(2, seed=5, noise=0.5)
        clean = CorrelatedBehavior(2, seed=5, noise=0.0)
        rng = random.Random(9)
        clean_rng = random.Random(9)
        flips = sum(
            behavior.next_outcome(rng, i % 4)
            != clean.next_outcome(clean_rng, i % 4)
            for i in range(2000)
        )
        assert 800 < flips < 1200

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedBehavior(0, seed=1)
        with pytest.raises(ValueError):
            CorrelatedBehavior(4, seed=1, noise=2.0)


class TestMarkovBehavior:
    def test_produces_runs(self):
        behavior = MarkovBehavior(0.95, 0.95)
        outcomes = _outcomes(behavior, 4000, seed=2)
        switches = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a != b
        )
        # Switch probability ~0.05 per step.
        assert switches < 400

    def test_start_state(self):
        assert _outcomes(MarkovBehavior(1.0, 1.0, start_taken=True), 5) == [
            True
        ] * 5
        assert _outcomes(
            MarkovBehavior(1.0, 1.0, start_taken=False), 5
        ) == [False] * 5

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovBehavior(1.5, 0.5)
        with pytest.raises(ValueError):
            MarkovBehavior(0.5, -0.1)


class TestBehaviorMix:
    def test_draw_produces_all_kinds(self):
        mix = BehaviorMix()
        rng = random.Random(123)
        kinds = {type(mix.draw(rng)).__name__ for __ in range(400)}
        assert {
            "BiasedBehavior",
            "LoopBehavior",
            "CorrelatedBehavior",
            "MarkovBehavior",
            "PatternBehavior",
        } <= kinds

    def test_draw_loop_always_loop(self):
        mix = BehaviorMix()
        rng = random.Random(5)
        for __ in range(100):
            behavior = mix.draw_loop(rng)
            assert isinstance(behavior, LoopBehavior)
            assert behavior.trip_count >= 2

    def test_pattern_never_constant(self):
        mix = BehaviorMix(pattern_weight=1.0)
        rng = random.Random(6)
        for __ in range(200):
            behavior = mix.draw(rng)
            if isinstance(behavior, PatternBehavior):
                assert any(behavior.pattern) and not all(behavior.pattern)

    def test_validation(self):
        with pytest.raises(ValueError):
            BehaviorMix(biased_weight=-1.0)
        with pytest.raises(ValueError):
            BehaviorMix(
                biased_weight=0,
                loop_weight=0,
                pattern_weight=0,
                correlated_weight=0,
                markov_weight=0,
            )
