"""Tests for the multi-process/OS interleaving scheduler."""

import pytest

from repro.traces.synthetic.behavior import BehaviorMix
from repro.traces.synthetic.cfg import ProgramConfig, ProgramExecutor, build_program
from repro.traces.synthetic.kernel import SchedulerConfig, interleave


def _executor(base, seed):
    config = ProgramConfig(
        static_branches=60,
        procedures=6,
        base_address=base,
        mix=BehaviorMix(),
        name=f"p{base:#x}",
    )
    return ProgramExecutor(build_program(config, seed=seed), seed=seed + 1)


KERNEL_BASE = 0x8000_0000


class TestInterleave:
    def test_exact_length(self):
        events = interleave(
            [_executor(0x400000, 1)],
            _executor(KERNEL_BASE, 9),
            length=5000,
            config=SchedulerConfig(),
            seed=3,
        )
        assert len(events) == 5000

    def test_zero_length(self):
        events = interleave(
            [_executor(0x400000, 1)],
            None,
            length=0,
            config=SchedulerConfig(kernel_share=0.0),
            seed=3,
        )
        assert events == []

    def test_deterministic(self):
        def run():
            return interleave(
                [_executor(0x400000, 1), _executor(0x1400000, 2)],
                _executor(KERNEL_BASE, 9),
                length=4000,
                config=SchedulerConfig(mean_quantum=300),
                seed=3,
            )

        assert run() == run()

    def test_all_processes_scheduled(self):
        events = interleave(
            [_executor(0x400000, 1), _executor(0x1400000, 2)],
            None,
            length=8000,
            config=SchedulerConfig(mean_quantum=500, kernel_share=0.0),
            seed=4,
        )
        segments = {pc & 0xFF00_0000 for pc, *_ in events}
        assert 0x0040_0000 & 0xFF00_0000 in segments or 0x0 in segments
        assert 0x0100_0000 in segments

    def test_kernel_share_approximate(self):
        share = 0.25
        events = interleave(
            [_executor(0x400000, 1)],
            _executor(KERNEL_BASE, 9),
            length=30_000,
            config=SchedulerConfig(
                mean_quantum=600, kernel_share=share, mean_kernel_burst=150
            ),
            seed=5,
        )
        kernel_events = sum(1 for pc, *_ in events if pc >= KERNEL_BASE)
        observed = kernel_events / len(events)
        assert 0.4 * share < observed < 2.0 * share

    def test_no_kernel_when_disabled(self):
        events = interleave(
            [_executor(0x400000, 1)],
            _executor(KERNEL_BASE, 9),
            length=5000,
            config=SchedulerConfig(kernel_share=0.0),
            seed=6,
        )
        assert all(pc < KERNEL_BASE for pc, *_ in events)

    def test_validation(self):
        with pytest.raises(ValueError):
            interleave([], None, 100, SchedulerConfig(), seed=1)
        with pytest.raises(ValueError):
            interleave(
                [_executor(0x400000, 1)], None, -1, SchedulerConfig(), seed=1
            )

    def test_context_switches_interleave_quanta(self):
        """With two processes and short quanta, segments must alternate
        many times (the aliasing-pressure mechanism)."""
        events = interleave(
            [_executor(0x400000, 1), _executor(0x1400000, 2)],
            None,
            length=10_000,
            config=SchedulerConfig(mean_quantum=200, kernel_share=0.0),
            seed=7,
        )
        segment = [pc >> 24 for pc, *_ in events]
        switches = sum(
            1 for a, b in zip(segment, segment[1:]) if a != b
        )
        assert switches >= 10
