"""Tests for the trace-quality profile and IBS-shape validation."""

import pytest

from repro.traces.synthetic.validation import (
    profile_trace,
    validate_ibs_shape,
)
from repro.traces.synthetic.workloads import IBS_BENCHMARKS, ibs_trace
from repro.traces.trace import BranchRecord, Trace


class TestProfileTrace:
    def test_counts(self, small_trace):
        profile = profile_trace(small_trace)
        assert profile.events == len(small_trace)
        assert profile.conditional == small_trace.conditional_count
        assert profile.static == small_trace.static_conditional_count
        assert profile.taken_ratio == pytest.approx(
            small_trace.taken_ratio
        )

    def test_bias_fractions(self):
        records = []
        # One always-taken branch, one alternating branch, 20 execs each.
        for step in range(20):
            records.append(BranchRecord(pc=0x100, taken=True))
            records.append(BranchRecord(pc=0x104, taken=step % 2 == 0))
        profile = profile_trace(Trace.from_records(records))
        assert profile.strongly_biased_fraction == pytest.approx(0.5)
        assert profile.near_random_fraction == pytest.approx(0.5)

    def test_run_lengths(self):
        # TTTN repeating: taken runs of 3, not-taken runs of 1.
        records = [
            BranchRecord(pc=0x100, taken=(step % 4 != 3))
            for step in range(40)
        ]
        profile = profile_trace(Trace.from_records(records))
        assert profile.mean_taken_run == pytest.approx(3.0)
        assert profile.mean_not_taken_run == pytest.approx(1.0)

    def test_segments_and_interleaving(self):
        records = [
            BranchRecord(pc=0x0040_0000, taken=True),
            BranchRecord(pc=0x8000_0000, taken=True),
            BranchRecord(pc=0x0040_0004, taken=True),
            BranchRecord(pc=0x0040_0008, taken=True),
        ]
        profile = profile_trace(Trace.from_records(records))
        assert profile.segments == 2
        assert profile.interleave_rate == pytest.approx(2 / 4 * 1000)

    def test_distance_buckets_cover_all_references(self, tiny_trace):
        profile = profile_trace(tiny_trace)
        assert (
            sum(profile.distance_buckets) + profile.first_encounters
            == tiny_trace.conditional_count
        )

    def test_median_bucket(self, small_trace):
        profile = profile_trace(small_trace)
        assert 0 <= profile.median_distance_bucket < len(
            profile.distance_buckets
        )


class TestValidateIbsShape:
    @pytest.mark.parametrize("bench_name", IBS_BENCHMARKS)
    def test_all_shipped_workloads_pass(self, bench_name):
        """The acceptance box that makes the DESIGN.md substitution
        claim checkable: every clone must look like a multi-process OS
        workload."""
        profile = profile_trace(ibs_trace(bench_name, scale=0.3))
        assert validate_ibs_shape(profile) == []

    def test_degenerate_trace_fails(self):
        records = [BranchRecord(pc=0x100, taken=True)] * 50
        profile = profile_trace(Trace.from_records(records))
        problems = validate_ibs_shape(profile)
        assert problems  # single segment, no switching, too short
        assert any("segment" in p for p in problems)

    def test_random_trace_fails_bias_check(self):
        import random

        rng = random.Random(1)
        records = [
            BranchRecord(
                pc=0x400000 + (rng.randrange(64) << 2) | (
                    0x0100_0000 if rng.random() < 0.5 else 0
                ),
                taken=rng.random() < 0.5,
            )
            for __ in range(3000)
        ]
        profile = profile_trace(Trace.from_records(records))
        problems = validate_ibs_shape(profile)
        assert any("strongly biased" in p or "near-random" in p
                   for p in problems)
