"""PredictorState round-trip property tests.

The serving layer's whole crash/rollback/wire story rests on one
contract: ``capture → serialize → deserialize → restore`` is identity
for every predictor family, and anything short of a byte-perfect payload
fails loudly — state is never silently reset.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.state import (
    STATE_FORMAT,
    STATE_VERSION,
    PredictorState,
    StateError,
    StateFormatError,
    StateMismatchError,
)

from repro.traces.trace import Trace

from tests.strategies import STATE_SPECS, predictor_states
from tests.strategies import traces as trace_strategy


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(drawn=predictor_states())
    def test_serialize_deserialize_restore_is_identity(self, drawn):
        spec, predictor, state = drawn
        revived = PredictorState.from_bytes(state.to_bytes())
        assert revived == state
        assert revived.digest() == state.digest()
        # Restoring into a *fresh* predictor reproduces the captured
        # object graph exactly.
        fresh = make_predictor(spec)
        revived.restore(fresh)
        assert PredictorState.capture(fresh) == state

    @settings(max_examples=40, deadline=None)
    @given(drawn=predictor_states(), more=trace_strategy(max_length=60))
    def test_restore_rewinds_a_dirtied_predictor(self, drawn, more):
        """Snapshot, keep simulating, restore: behaviour rewinds too."""
        spec, predictor, state = drawn
        simulate(predictor, more)
        state.restore(predictor)
        assert PredictorState.capture(predictor) == state
        # The rewound predictor continues exactly like a twin that never
        # saw the extra events.
        twin = make_predictor(spec)
        state.restore(twin)
        a = simulate(predictor, more)
        b = simulate(twin, more)
        assert (a.conditional_branches, a.mispredictions) == (
            b.conditional_branches,
            b.mispredictions,
        )
        assert PredictorState.capture(predictor) == PredictorState.capture(twin)

    @pytest.mark.parametrize("spec", STATE_SPECS)
    def test_every_golden_matrix_family_round_trips(self, spec, tiny_trace):
        predictor = make_predictor(spec)
        simulate(predictor, tiny_trace)
        state = PredictorState.capture(predictor)
        assert PredictorState.from_bytes(state.to_bytes()) == state
        dirty_digest = state.digest()
        fresh = make_predictor(spec)
        state.restore(fresh)
        assert PredictorState.capture(fresh).digest() == dirty_digest


class TestFailsLoudly:
    def _state(self) -> PredictorState:
        predictor = make_predictor("gshare:64:h5")
        trace = Trace.from_columns(
            [4 * i for i in range(64)],
            [i % 2 for i in range(64)],
            [1] * 64,
        )
        simulate(predictor, trace)
        return PredictorState.capture(predictor)

    def test_bit_flip_in_payload_is_detected(self):
        state = self._state()
        document = json.loads(state.to_bytes())
        # Corrupt one counter value but leave the JSON valid: only the
        # checksum can catch this class of damage.
        counters = document["payload"]["bank"]["v"]["v"]
        counters[0] = (counters[0] + 1) % 4
        blob = json.dumps(document).encode("utf-8")
        with pytest.raises(StateFormatError, match="checksum"):
            PredictorState.from_bytes(blob)

    def test_truncated_and_junk_payloads_are_rejected(self):
        state = self._state()
        blob = state.to_bytes()
        with pytest.raises(StateFormatError):
            PredictorState.from_bytes(blob[: len(blob) // 2])
        with pytest.raises(StateFormatError):
            PredictorState.from_bytes(b"not json at all")
        with pytest.raises(StateFormatError):
            PredictorState.from_bytes(b'"a json string, not an object"')

    def test_wrong_format_and_version_markers_are_rejected(self):
        state = self._state()
        document = json.loads(state.to_bytes())
        bad_format = dict(document, format="something-else")
        with pytest.raises(StateFormatError, match=STATE_FORMAT):
            PredictorState.from_bytes(json.dumps(bad_format).encode())
        bad_version = dict(document, version=STATE_VERSION + 1)
        with pytest.raises(StateFormatError, match="version"):
            PredictorState.from_bytes(json.dumps(bad_version).encode())

    def test_cross_class_restore_is_rejected_before_mutation(self):
        state = PredictorState.capture(make_predictor("bimodal:64"))
        target = make_predictor("gshare:64:h5")
        before = PredictorState.capture(target)
        with pytest.raises(StateMismatchError):
            state.restore(target)
        assert PredictorState.capture(target) == before

    def test_cross_geometry_restore_is_rejected_before_mutation(self):
        predictor = make_predictor("bimodal:64")
        predictor.bank.counters.values[3] = 3
        state = PredictorState.capture(predictor)
        target = make_predictor("bimodal:128")
        before = PredictorState.capture(target)
        with pytest.raises(StateMismatchError):
            state.restore(target)
        assert PredictorState.capture(target) == before

    def test_unknown_attribute_types_fail_capture(self):
        predictor = make_predictor("bimodal:64")
        predictor.rogue = object()  # anything the walker can't encode
        with pytest.raises(StateError, match="rogue"):
            PredictorState.capture(predictor)
