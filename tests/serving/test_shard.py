"""Shard/tenant mechanics: hashing, batching, lifecycle, invariance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.shard import Shard, ShardRing, shard_of
from repro.sim.config import make_predictor
from repro.sim.state import PredictorState
from repro.sim.vectorized import simulate_fast
from repro.traces.trace import Trace

from tests.strategies import traces as trace_strategy


class TestShardOf:
    def test_assignment_is_stable_and_in_range(self):
        for shards in (1, 4, 7, 64):
            for session in ("alice", "bob", "groff/17", ""):
                first = shard_of(session, shards)
                assert 0 <= first < shards
                assert shard_of(session, shards) == first

    def test_not_the_salted_builtin_hash(self):
        # Pinned values: if these move, golden serving assignments move.
        assert shard_of("groff", 4) == 3
        assert shard_of("gs", 4) == 2
        assert shard_of("mpeg_play", 4) == 3

    def test_sessions_spread_across_shards(self):
        shards = 8
        hits = {shard_of(f"tenant-{i}", shards) for i in range(256)}
        assert hits == set(range(shards))


class TestTenantLifecycle:
    def test_open_is_idempotent_but_spec_conflicts_fail(self):
        shard = Shard(0, batch_size=8)
        tenant = shard.open("s", "bimodal:64")
        assert shard.open("s", "bimodal:64") is tenant
        with pytest.raises(ValueError, match="spec"):
            shard.open("s", "gshare:64:h5")

    def test_unknown_session_fails_loudly(self):
        shard = Shard(0, batch_size=8)
        with pytest.raises(KeyError, match="ghost"):
            shard.push("ghost", 4, True)
        with pytest.raises(KeyError, match="ghost"):
            shard.flush("ghost")

    def test_push_signals_full_batch_and_flush_drains(self):
        shard = Shard(0, batch_size=4)
        shard.open("s", "bimodal:64")
        assert [shard.push("s", 4 * i, True) for i in range(3)] == [
            False, False, False,
        ]
        assert shard.push("s", 12, False) is True
        assert shard.flush("s") == 4
        assert shard.tenant("s").pending == 0
        assert shard.tenant("s").conditional_branches == 4

    def test_close_flushes_and_reports(self):
        shard = Shard(0, batch_size=100)
        shard.open("s", "bimodal:64")
        for i in range(10):
            shard.push("s", 4 * (i % 3), i % 2 == 0)
        stats = shard.close("s")
        assert stats["conditional_branches"] == 10
        assert stats["events"] == 10
        assert stats["pending"] == 0
        with pytest.raises(KeyError):
            shard.tenant("s")


class TestBatchInvariance:
    """Flush boundaries must be invisible to results and final state."""

    @settings(max_examples=30, deadline=None)
    @given(
        trace=trace_strategy(max_length=150),
        batch_size=st.integers(1, 40),
        spec=st.sampled_from(
            ["bimodal:64", "gshare:64:h5", "gskew:3x64:h4:partial",
             "agree:64:h5", "gskew:1x64:h4:lazy"]
        ),
    )
    def test_any_batch_size_matches_one_serial_run(
        self, trace, batch_size, spec
    ):
        shard = Shard(0, batch_size=batch_size)
        shard.open("s", spec)
        for i in range(len(trace)):
            if shard.push(
                "s",
                int(trace.pcs[i]),
                bool(trace.takens[i]),
                bool(trace.conditionals[i]),
            ):
                shard.flush("s")
        stats = shard.close("s")

        reference = make_predictor(spec)
        result = simulate_fast(reference, trace, label=spec)
        assert stats["conditional_branches"] == result.conditional_branches
        assert stats["mispredictions"] == result.mispredictions

    def test_final_state_matches_serial_run(self):
        spec = "gshare:128:h7"
        trace = Trace.from_columns(
            [4 * (i % 37) for i in range(300)],
            [(i * 7) % 3 == 0 for i in range(300)],
            [i % 11 != 0 for i in range(300)],
            name="state-parity",
        )
        shard = Shard(0, batch_size=17)
        tenant = shard.open("s", spec)
        for i in range(len(trace)):
            if shard.push(
                "s",
                int(trace.pcs[i]),
                bool(trace.takens[i]),
                bool(trace.conditionals[i]),
            ):
                shard.flush("s")
        shard.flush("s")
        reference = make_predictor(spec)
        simulate_fast(reference, trace, label=spec)
        assert (
            PredictorState.capture(tenant.predictor).digest()
            == PredictorState.capture(reference).digest()
        )


class TestShardRing:
    def test_ring_routes_and_counts(self):
        ring = ShardRing(shards=4, batch_size=8)
        assert len(ring) == 4
        for name in ("a", "b", "c", "d", "e"):
            ring.shard_for(name).open(name, "bimodal:64")
        assert sorted(ring.sessions()) == ["a", "b", "c", "d", "e"]
        stats = ring.stats()
        assert stats["shards"] == 4
        assert stats["sessions"] == 5
        assert stats["flushes"] == 0
