"""Differential serving tests: interleaved multi-tenant == serial.

The acceptance criterion of the serving layer, verbatim: N interleaved
sessions through the server produce per-tenant results and final
``PredictorState`` byte-identical to N serial ``simulate_fast`` runs —
across predictor families, engine tiers (``REPRO_ENGINE`` forced),
mid-stream snapshot/restore, and arbitrary flush boundaries.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings, strategies as st

from repro.serving.client import PredictionClient, ServingError
from repro.serving.server import PredictionServer, PredictionService
from repro.sim.config import make_predictor
from repro.sim.native import native_available
from repro.sim.state import PredictorState
from repro.sim.vectorized import simulate_fast
from repro.traces.trace import Trace

from tests.strategies import traces as trace_strategy

#: Families for the tier-forced matrix: every one of these has a path on
#: every forced tier (generic always; vectorized/scan/native per their
#: ``supports`` gates at this geometry).
TIER_SPECS = [
    "bimodal:128",
    "gshare:128:h6",
    "gskew:3x128:h5:total",
    "gskew:1x128:h5:lazy",
]

#: Families only some tiers express; the un-forced ladder must still
#: serve them bit-identically (falling back internally as needed).
LADDER_ONLY_SPECS = [
    "agree:128:h6",
    "gskew:3x128:h5:partial",
    "hybrid:128:h6",
    "fa:32:h4",
    "unaliased:h4",
]

ENGINES = ["generic", "vectorized", "scan", "native"]


def _interleave_round_robin(service, sessions, chunk):
    """Feed each session's trace through the service, ``chunk`` events
    per turn of a round-robin over all sessions."""
    cursors = {name: 0 for name in sessions}
    live = True
    while live:
        live = False
        for name, trace in sessions.items():
            lo = cursors[name]
            if lo >= len(trace):
                continue
            live = True
            hi = min(lo + chunk, len(trace))
            events = [
                [int(trace.pcs[i]), int(trace.takens[i]),
                 int(trace.conditionals[i])]
                for i in range(lo, hi)
            ]
            cursors[name] = hi
            response = service.handle(
                {"op": "events", "session": name, "events": events}
            )
            assert response["ok"], response


def _served_finals(service, sessions):
    finals = {}
    for name in sessions:
        stats = service.handle({"op": "sync", "session": name})
        assert stats["ok"], stats
        predictor = service.ring.shard_for(name).tenant(name).predictor
        finals[name] = (
            stats["conditional_branches"],
            stats["mispredictions"],
            PredictorState.capture(predictor).digest(),
        )
    return finals


def _serial_finals(sessions, specs):
    finals = {}
    for name, trace in sessions.items():
        predictor = make_predictor(specs[name])
        result = simulate_fast(predictor, trace, label=specs[name])
        finals[name] = (
            result.conditional_branches,
            result.mispredictions,
            PredictorState.capture(predictor).digest(),
        )
    return finals


def _ibs_like(seed: int, length: int) -> Trace:
    """A small deterministic trace with realistic PC reuse."""
    pcs, takens, conditionals = [], [], []
    value = seed * 2654435761 % 2**32
    for i in range(length):
        value = (value * 1103515245 + 12345) % 2**31
        pcs.append(4 * (value % 61))
        takens.append((value >> 7) & 1)
        conditionals.append(0 if value % 13 == 0 else 1)
    return Trace.from_columns(pcs, takens, conditionals, name=f"sess{seed}")


class TestInterleavedVsSerial:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("spec", TIER_SPECS)
    def test_forced_tier_parity(self, engine, spec, monkeypatch):
        """Interleaved == serial on every forced engine tier."""
        if engine == "native" and not native_available():
            pytest.skip("native backend unavailable")
        monkeypatch.setenv("REPRO_ENGINE", engine)
        sessions = {f"t{i}": _ibs_like(i + 1, 400 + 30 * i) for i in range(4)}
        specs = {name: spec for name in sessions}
        service = PredictionService(shards=3, batch_size=64)
        for name in sessions:
            service.handle({"op": "open", "session": name, "spec": spec})
        _interleave_round_robin(service, sessions, chunk=37)
        assert _served_finals(service, sessions) == _serial_finals(
            sessions, specs
        )

    @pytest.mark.parametrize("spec", LADDER_ONLY_SPECS)
    def test_ladder_parity_for_fallback_families(self, spec):
        """Families without full tier coverage still serve identically."""
        sessions = {f"t{i}": _ibs_like(10 + i, 350) for i in range(3)}
        specs = {name: spec for name in sessions}
        service = PredictionService(shards=2, batch_size=48)
        for name in sessions:
            service.handle({"op": "open", "session": name, "spec": spec})
        _interleave_round_robin(service, sessions, chunk=23)
        assert _served_finals(service, sessions) == _serial_finals(
            sessions, specs
        )

    def test_mixed_specs_one_server(self):
        """Tenants with different predictor families don't cross-talk."""
        all_specs = TIER_SPECS + LADDER_ONLY_SPECS
        sessions, specs = {}, {}
        for i, spec in enumerate(all_specs):
            name = f"mix{i}"
            sessions[name] = _ibs_like(100 + i, 300)
            specs[name] = spec
        service = PredictionService(shards=4, batch_size=32)
        for name in sessions:
            service.handle(
                {"op": "open", "session": name, "spec": specs[name]}
            )
        _interleave_round_robin(service, sessions, chunk=19)
        assert _served_finals(service, sessions) == _serial_finals(
            sessions, specs
        )

    @settings(max_examples=25, deadline=None)
    @given(
        traces=st.lists(
            trace_strategy(max_length=120), min_size=1, max_size=4
        ),
        chunk=st.integers(1, 50),
        batch_size=st.integers(1, 40),
        spec=st.sampled_from(TIER_SPECS + ["agree:64:h5"]),
    )
    def test_fuzzed_interleavings_and_flush_boundaries(
        self, traces, chunk, batch_size, spec
    ):
        """Arbitrary session count x chunking x batch size: still exact."""
        sessions = {f"f{i}": trace for i, trace in enumerate(traces)}
        specs = {name: spec for name in sessions}
        service = PredictionService(shards=2, batch_size=batch_size)
        for name in sessions:
            service.handle({"op": "open", "session": name, "spec": spec})
        _interleave_round_robin(service, sessions, chunk=chunk)
        assert _served_finals(service, sessions) == _serial_finals(
            sessions, specs
        )

    @settings(max_examples=15, deadline=None)
    @given(
        trace=trace_strategy(max_length=150),
        sync_points=st.lists(st.integers(0, 150), max_size=5),
        spec=st.sampled_from(["gshare:64:h5", "gskew:3x64:h4:partial"]),
    )
    def test_out_of_order_sync_barriers(self, trace, sync_points, spec):
        """Forced flushes at arbitrary points don't perturb results."""
        service = PredictionService(shards=1, batch_size=32)
        service.handle({"op": "open", "session": "s", "spec": spec})
        marks = set(sync_points)
        for i in range(len(trace)):
            service.handle(
                {
                    "op": "events",
                    "session": "s",
                    "events": [
                        [int(trace.pcs[i]), int(trace.takens[i]),
                         int(trace.conditionals[i])]
                    ],
                }
            )
            if i in marks:
                service.handle({"op": "sync", "session": "s"})
        finals = _served_finals(service, {"s": trace})
        assert finals == _serial_finals({"s": trace}, {"s": spec})


class TestSnapshotRestore:
    def test_mid_stream_snapshot_then_restore_rewinds_exactly(self):
        spec = "gshare:128:h7"
        trace = _ibs_like(5, 600)
        half = len(trace) // 2

        service = PredictionService(shards=1, batch_size=50)
        service.handle({"op": "open", "session": "s", "spec": spec})
        first = [
            [int(trace.pcs[i]), int(trace.takens[i]),
             int(trace.conditionals[i])]
            for i in range(half)
        ]
        rest = [
            [int(trace.pcs[i]), int(trace.takens[i]),
             int(trace.conditionals[i])]
            for i in range(half, len(trace))
        ]
        service.handle({"op": "events", "session": "s", "events": first})
        snap = service.handle({"op": "snapshot", "session": "s"})
        assert snap["ok"]

        # Replay the second half twice with a restore in between: the
        # rewind must reproduce the identical final digest both times.
        digests = []
        for _ in range(2):
            service.handle({"op": "events", "session": "s", "events": rest})
            service.handle({"op": "sync", "session": "s"})
            predictor = service.ring.shard_for("s").tenant("s").predictor
            digests.append(PredictorState.capture(predictor).digest())
            restored = service.handle(
                {"op": "restore", "session": "s", "state": snap["state"]}
            )
            assert restored["ok"], restored
        assert digests[0] == digests[1]

        # And the snapshot itself matches a serial run over the first half.
        reference = make_predictor(spec)
        simulate_fast(reference, trace.slice(0, half), label=spec)
        assert (
            PredictorState.from_bytes(bytes.fromhex(snap["state"])).digest()
            == PredictorState.capture(reference).digest()
        )

    def test_corrupt_restore_payload_is_refused(self):
        service = PredictionService(shards=1, batch_size=50)
        service.handle({"op": "open", "session": "s", "spec": "bimodal:64"})
        snap = service.handle({"op": "snapshot", "session": "s"})
        corrupted = snap["state"][:-8] + "deadbeef"
        response = service.handle(
            {"op": "restore", "session": "s", "state": corrupted}
        )
        assert response["ok"] is False
        assert "restore rejected" in response["error"]


class TestAsyncServer:
    """The TCP front end: concurrent clients, real sockets, same parity."""

    def test_concurrent_clients_are_bit_identical_to_serial(self):
        async def scenario():
            sessions = {
                f"net{i}": _ibs_like(50 + i, 350) for i in range(3)
            }
            spec = "gshare:128:h6"
            async with PredictionServer(
                shards=2, batch_size=40, linger_s=0.002
            ) as server:
                host, port = server.address

                async def drive(name, trace):
                    async with PredictionClient(host, port) as client:
                        await client.open(name, spec)
                        for lo in range(0, len(trace), 29):
                            hi = min(lo + 29, len(trace))
                            await client.events(
                                name,
                                [
                                    (int(trace.pcs[i]), int(trace.takens[i]),
                                     int(trace.conditionals[i]))
                                    for i in range(lo, hi)
                                ],
                            )
                            await asyncio.sleep(0)  # force interleaving
                        stats = await client.sync(name)
                        state = await client.snapshot(name)
                        return (
                            stats["conditional_branches"],
                            stats["mispredictions"],
                            state.digest(),
                        )

                served = await asyncio.gather(
                    *(drive(name, trace) for name, trace in sessions.items())
                )
                assert server.service.ring.stats()["sessions"] == 3
                return dict(zip(sessions, served)), sessions, spec

        served, sessions, spec = asyncio.run(scenario())
        specs = {name: spec for name in sessions}
        assert served == _serial_finals(sessions, specs)

    def test_protocol_errors_are_answered_not_fatal(self):
        async def scenario():
            async with PredictionServer(shards=1, batch_size=8) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"this is not json\n")
                await writer.drain()
                line = await reader.readline()
                # The connection survives a garbage line...
                writer.write(
                    b'{"op": "open", "session": "s", "spec": "bimodal:64"}\n'
                )
                await writer.drain()
                second = await reader.readline()
                writer.close()
                await writer.wait_closed()
                return line, second

        import json

        first, second = asyncio.run(scenario())
        assert json.loads(first)["ok"] is False
        assert json.loads(second)["ok"] is True

    def test_unknown_session_error_surfaces_in_client(self):
        async def scenario():
            async with PredictionServer(shards=1, batch_size=8) as server:
                host, port = server.address
                async with PredictionClient(host, port) as client:
                    with pytest.raises(ServingError, match="ghost"):
                        await client.sync("ghost")

        asyncio.run(scenario())
