"""Shared fixtures: small deterministic traces for fast tests."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help=(
            "regenerate tests/golden/golden_rates.json from the current "
            "engines instead of asserting against it"
        ),
    )

from repro.traces.synthetic.behavior import BehaviorMix
from repro.traces.synthetic.generator import WorkloadConfig, generate_trace
from repro.traces.synthetic.kernel import SchedulerConfig
from repro.traces.trace import Trace

#: Scale used by experiment tests; keeps full-suite runtime manageable.
TEST_SCALE = 0.18


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A ~25k-event multi-process trace with OS interleaving."""
    config = WorkloadConfig(
        name="test-small",
        seed=42,
        length=25_000,
        processes=2,
        static_branches_per_process=150,
        procedures_per_process=14,
        mix=BehaviorMix(),
        kernel_static_branches=150,
        scheduler=SchedulerConfig(
            mean_quantum=800, kernel_share=0.15, mean_kernel_burst=100
        ),
    )
    return generate_trace(config)


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """A ~4k-event single-process trace (no kernel) for cheap tests."""
    config = WorkloadConfig(
        name="test-tiny",
        seed=7,
        length=4_000,
        processes=1,
        static_branches_per_process=80,
        procedures_per_process=8,
        kernel_static_branches=0,
        scheduler=SchedulerConfig(kernel_share=0.0),
    )
    return generate_trace(config)
