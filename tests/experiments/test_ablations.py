"""Tests for the ablation experiments (beyond-the-paper claims)."""

import pytest

from repro.experiments import (
    banks_ablation,
    egskew_ablation,
    interference_study,
    pas_extension,
    skew_ablation,
    update_ablation,
)
from tests.conftest import TEST_SCALE

BENCHES = ("groff", "real_gcc")


class TestBanksAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return banks_ablation.run(
            scale=TEST_SCALE, benchmarks=BENCHES, bank_entries=256
        )

    def test_three_banks_beat_one(self, result):
        for per_config in result.results.values():
            assert per_config["3 banks"] < per_config["1 bank"]

    def test_five_banks_marginal_over_three(self, result):
        """The paper's unreported finding: 5 banks ~ 3 banks."""
        for per_config in result.results.values():
            assert per_config["5 banks"] >= per_config["3 banks"] - 0.01

    def test_bigger_banks_beat_more_banks(self, result):
        """Spending the budget on bank size is the better trade."""
        for per_config in result.results.values():
            assert (
                per_config["3 banks, 2x size"]
                <= per_config["5 banks"] * 1.05
            )

    def test_render(self, result):
        text = banks_ablation.render(result)
        assert "Bank-count ablation" in text


class TestUpdateAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return update_ablation.run(
            scale=TEST_SCALE, benchmarks=BENCHES, bank_entries=256
        )

    def test_partial_is_best(self, result):
        for per_policy in result.results.values():
            assert per_policy["partial"] <= per_policy["total"] * 1.02
            assert per_policy["partial"] <= per_policy["lazy"] * 1.02

    def test_lazy_is_not_a_free_lunch(self, result):
        """Updating even less than partial hurts somewhere."""
        worse_somewhere = any(
            per_policy["lazy"] > per_policy["partial"]
            for per_policy in result.results.values()
        )
        assert worse_somewhere

    def test_render(self, result):
        assert "Update-policy ablation" in update_ablation.render(result)


class TestSkewAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return skew_ablation.run(
            scale=TEST_SCALE, benchmarks=BENCHES, bank_entries=256
        )

    def test_naive_family_is_much_worse(self, result):
        """Identical index functions = no dispersion: a 3x replicated
        small table. Both real families must beat it."""
        for per_family in result.results.values():
            assert per_family["skew"] < per_family["naive"]
            assert per_family["xor-shift"] < per_family["naive"]

    def test_paper_family_competitive_with_xor_shift(self, result):
        for per_family in result.results.values():
            assert per_family["skew"] <= per_family["xor-shift"] * 1.10

    def test_render(self, result):
        assert "Skewing-function ablation" in skew_ablation.render(result)


class TestEgskewAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return egskew_ablation.run(
            scale=TEST_SCALE,
            benchmarks=BENCHES,
            bank_entries=256,
            history_bits=12,
            bank0_variants=(0, 4, 12),
        )

    def test_zero_history_bank0_wins_at_long_history(self, result):
        for per_variant in result.results.values():
            assert per_variant[0] <= per_variant[12] * 1.03

    def test_variants_filtered_by_history(self):
        result = egskew_ablation.run(
            scale=TEST_SCALE,
            benchmarks=("groff",),
            history_bits=4,
            bank0_variants=(0, 2, 8),
        )
        assert result.bank0_variants == [0, 2]

    def test_render(self, result):
        assert "bank-0 ablation" in egskew_ablation.render(result)


class TestInterferenceStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return interference_study.run(
            scale=TEST_SCALE, benchmarks=BENCHES, entries=256
        )

    def test_destructive_dominates(self, result):
        for breakdown in result.results.values():
            assert breakdown.destructive > breakdown.constructive

    def test_render(self, result):
        text = interference_study.render(result)
        assert "Interference classification" in text
        assert "destr/constr" in text


class TestPasExtension:
    @pytest.fixture(scope="class")
    def result(self):
        return pas_extension.run(scale=TEST_SCALE, benchmarks=BENCHES)

    def test_skewed_pas_competitive_at_less_storage(self, result):
        for values in result.results.values():
            assert values["skewed-pas"] <= values["pas"] * 1.15

    def test_render(self, result):
        assert "PAs extension" in pas_extension.render(result)
