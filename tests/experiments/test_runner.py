"""Tests for the experiment CLI runner."""

import pytest

from repro.experiments.runner import EXPERIMENTS, main, run_experiment


class TestRunExperiment:
    def test_all_experiments_registered(self):
        expected = {
            "table1",
            "table2",
            "figure1",
            "figure2",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "figure11",
            "figure12",
            "banks",
            "update",
            "skew-functions",
            "egskew-bank0",
            "interference",
            "pas",
            "shootout",
            "encoding",
            "opt-vs-lru",
            "os-pressure",
            "context-switch",
            "robustness",
            "best-history",
            "claims",
            "warmup",
            "workload-class",
        }
        assert set(EXPERIMENTS) == expected

    def test_run_pure_math_experiment(self):
        text = run_experiment("figure9")
        assert "P_dm" in text

    def test_run_with_scale(self):
        text = run_experiment("table1", scale=0.05)
        assert "Table 1" in text

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("figure99")


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure12" in out

    def test_unknown_is_error(self, capsys):
        assert main(["nonsense"]) == 2

    def test_runs_named_experiment(self, capsys):
        assert main(["figure10"]) == 0
        out = capsys.readouterr().out
        assert "=== figure10 ===" in out
        assert "P_sk" in out

    def test_run_summary_line(self, capsys):
        assert main(["figure9", "figure10"]) == 0
        out = capsys.readouterr().out
        assert "=== ran 2 experiment(s) in " in out

    def test_scale_flag(self, capsys):
        assert main(["table1", "--scale", "0.05"]) == 0
        assert "Table 1" in capsys.readouterr().out
