"""Tests for the Figure 4 structure description."""

import pytest

from repro.experiments import figure4


class TestFigure4:
    def test_default_is_papers_headline_configuration(self):
        result = figure4.run()
        assert "gskew" in result.kind
        assert len(result.banks) == 3
        assert result.history_bits == 12
        assert result.storage_bits == 3 * 4096 * 2

    def test_egskew_bank0_labelled_address_indexed(self):
        result = figure4.run("egskew:3x512:h8")
        assert "enhanced" in result.kind
        assert "address mod 2^n" in result.banks[0]
        assert "f1(V)" in result.banks[1]

    def test_bcgskew_structure(self):
        result = figure4.run("2bcgskew:1k:h10")
        assert "2Bc-gskew" in result.kind
        assert len(result.banks) == 4
        assert any("META" in label for label in result.banks)
        assert "META selects" in result.vote

    def test_five_banks(self):
        result = figure4.run("gskew:5x256:h4")
        assert len(result.banks) == 5
        assert result.vote == "majority of 5"

    def test_rejects_non_skewed_specs(self):
        with pytest.raises(ValueError, match="skewed-family"):
            figure4.run("gshare:4k:h4")

    def test_render_contains_diagram(self):
        text = figure4.render(figure4.run())
        assert "Figure 4" in text
        assert "majority of 3" in text
        assert "taken / not taken" in text
        assert text.count("+--") >= 4  # bank boxes

    def test_runner_integration(self):
        from repro.experiments.runner import run_experiment

        assert "Figure 4" in run_experiment("figure4")
