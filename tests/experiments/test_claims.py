"""Tests for the paper-claims checker."""

import pytest

from repro.experiments import claims


@pytest.fixture(scope="module")
def report():
    # Three representative benchmarks keep the checker fast under test.
    return claims.run(
        scale=0.3, benchmarks=("groff", "real_gcc", "verilog")
    )


class TestClaimsChecker:
    def test_every_registered_claim_evaluated(self, report):
        assert len(report.results) == len(claims.CLAIMS)
        names = {result.name for result in report.results}
        assert names == set(claims.CLAIMS)

    def test_all_claims_pass_on_default_benchmarks(self, report):
        failed = [r.name for r in report.results if not r.passed]
        assert failed == []

    def test_details_are_informative(self, report):
        for result in report.results:
            assert "holds on" in result.detail
            assert result.source

    def test_render_shows_verdicts(self, report):
        text = claims.render(report)
        assert "Paper-claims checklist" in text
        assert "PASS" in text
        assert "ALL CLAIMS REPRODUCED" in text

    def test_render_flags_failures(self):
        from repro.experiments.claims import ClaimResult, ClaimsReport

        report = ClaimsReport(
            results=[
                ClaimResult(
                    name="x", source="s", passed=False, detail="holds on 0/6"
                )
            ]
        )
        text = claims.render(report)
        assert "FAIL" in text
        assert "SOME CLAIMS FAILED" in text

    def test_runner_integration(self):
        from repro.experiments.runner import EXPERIMENTS

        assert "claims" in EXPERIMENTS
