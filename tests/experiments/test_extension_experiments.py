"""Tests for the extension experiments (shootout, encoding, OPT, OS)."""

import pytest

from repro.experiments import (
    antialiasing_shootout,
    encoding_ablation,
    opt_replacement,
    os_pressure,
)
from tests.conftest import TEST_SCALE

BENCHES = ("groff", "real_gcc")


class TestShootout:
    @pytest.fixture(scope="class")
    def result(self):
        return antialiasing_shootout.run(
            scale=TEST_SCALE, benchmarks=BENCHES, budget_bits=4096
        )

    def test_every_design_within_budget(self, result):
        for per_design in result.results.values():
            for __, storage in per_design.values():
                assert storage <= result.budget_bits

    def test_all_antialiasing_designs_beat_gshare_on_average(self, result):
        """Each 1997 anti-aliasing design should improve on plain gshare
        at matched budget, on average across benchmarks."""
        means = result.mean_ratios()
        for design in ("gskew (partial)", "e-gskew", "agree", "bi-mode"):
            assert means[design] <= means["gshare"] * 1.08

    def test_contenders_spec_sizes(self):
        specs = antialiasing_shootout.contenders(8192, 8)
        assert specs["gshare"] == "gshare:4k:h8"
        assert specs["gskew (partial)"] == "gskew:3x1k:h8:partial"
        assert specs["agree"] == "agree:2k:h8"
        assert specs["bi-mode"] == "bimode:1k:h8"

    def test_render(self, result):
        text = antialiasing_shootout.render(result)
        assert "shootout" in text
        assert "MEAN" in text


class TestEncodingAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return encoding_ablation.run(
            scale=TEST_SCALE, benchmarks=BENCHES, bank_entries=256
        )

    def test_storage_ordering(self, result):
        storage = {
            label: bits
            for label, (_, bits) in next(iter(result.results.values())).items()
        }
        assert (
            storage["1-bit"]
            < storage["shared hyst. 4-way"]
            < storage["shared hyst. 2-way"]
            < storage["2-bit replicated"]
        )

    def test_accuracy_ordering(self, result):
        """More hysteresis bits never hurt (within noise): 2-bit best,
        1-bit worst."""
        for per_design in result.results.values():
            two_bit = per_design["2-bit replicated"][0]
            shared2 = per_design["shared hyst. 2-way"][0]
            one_bit = per_design["1-bit"][0]
            assert two_bit <= shared2 * 1.05
            assert shared2 < one_bit

    def test_sharing_is_cheap(self, result):
        """The EV8 finding: 2-way sharing costs little accuracy for a
        25% storage saving."""
        for per_design in result.results.values():
            two_bit = per_design["2-bit replicated"][0]
            shared2 = per_design["shared hyst. 2-way"][0]
            assert shared2 <= two_bit + 0.012

    def test_render(self, result):
        assert "encoding ablation" in encoding_ablation.render(result).lower()


class TestOptReplacement:
    @pytest.fixture(scope="class")
    def result(self):
        return opt_replacement.run(
            scale=TEST_SCALE, benchmarks=BENCHES, sizes=(64, 512)
        )

    def test_opt_never_worse_than_lru(self, result):
        for series in result.curves.values():
            for lru, opt in zip(series["lru"], series["opt"]):
                assert opt <= lru + 1e-12

    def test_gap_largest_at_small_sizes(self, result):
        """Replacement slack matters when capacity is tight."""
        for series in result.curves.values():
            gap_small = series["lru"][0] - series["opt"][0]
            gap_large = series["lru"][-1] - series["opt"][-1]
            assert gap_small >= gap_large - 1e-9

    def test_render(self, result):
        assert "OPT vs LRU" in opt_replacement.render(result)


class TestOsPressure:
    @pytest.fixture(scope="class")
    def result(self):
        return os_pressure.run(
            scale=TEST_SCALE,
            kernel_shares=(0.0, 0.3),
            quanta=(300, 4000),
        )

    def test_kernel_raises_conflicts(self, result):
        """Adding a kernel component raises conflict aliasing at every
        quantum (the Gloy/Sechrest observation the paper builds on)."""
        for quantum in result.quanta:
            no_kernel = result.grid[(0.0, quantum)][1]
            with_kernel = result.grid[(0.3, quantum)][1]
            assert with_kernel >= no_kernel * 0.95

    def test_fast_switching_hurts(self, result):
        """Shorter quanta -> more interleaving -> worse prediction."""
        for share in result.kernel_shares:
            fast = result.grid[(share, 300)][0]
            slow = result.grid[(share, 4000)][0]
            assert fast >= slow * 0.97

    def test_render(self, result):
        assert "OS-pressure sweep" in os_pressure.render(result)


class TestContextSwitchAblation:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import context_switch_ablation

        return context_switch_ablation.run(
            scale=TEST_SCALE, benchmarks=BENCHES
        )

    def test_history_flush_is_cheap(self, result):
        for per_variant in result.results.values():
            assert (
                abs(per_variant["flush history"] - per_variant["shared"])
                < 0.02
            )

    def test_table_flush_is_costly(self, result):
        for per_variant in result.results.values():
            assert per_variant["flush tables"] > per_variant["shared"]

    def test_switches_observed(self, result):
        assert all(count > 0 for count in result.switches.values())

    def test_render(self, result):
        from repro.experiments import context_switch_ablation

        text = context_switch_ablation.render(result)
        assert "Context-switch ablation" in text


class TestWarmupStudy:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import warmup

        return warmup.run(scale=TEST_SCALE, benchmarks=BENCHES, window=1000)

    def test_series_present_for_every_design(self, result):
        for per_design in result.series.values():
            assert set(per_design) == set(result.specs)
            for windowed in per_design.values():
                assert windowed.branches

    def test_comparative_claim_survives_steady_state(self, result):
        """gskew vs gshare must not be a warm-up artefact: compare the
        steady-state regions alone."""
        for per_design in result.series.values():
            gskew = per_design["gskew"].steady_state()
            gshare = per_design["gshare"].steady_state()
            assert gskew <= gshare * 1.10

    def test_render(self, result):
        from repro.experiments import warmup

        text = warmup.render(result)
        assert "Warm-up study" in text
        assert "steady state" in text


class TestWorkloadClass:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import workload_class

        return workload_class.run(
            scale=TEST_SCALE,
            ibs=("groff", "real_gcc"),
            spec=("spec_fp_like", "spec_compiler_like"),
        )

    def test_os_traces_mispredict_more_on_average(self, result):
        assert result.class_mean(
            "IBS-like", "misprediction"
        ) > result.class_mean("SPEC-like", "misprediction")

    def test_os_traces_show_more_capacity_pressure(self, result):
        assert result.class_mean("IBS-like", "capacity") >= result.class_mean(
            "SPEC-like", "capacity"
        )

    def test_rows_labelled(self, result):
        classes = {row.workload_class for row in result.rows.values()}
        assert classes == {"IBS-like", "SPEC-like"}

    def test_render(self, result):
        from repro.experiments import workload_class

        text = workload_class.render(result)
        assert "Workload-class study" in text
        assert "MEAN (SPEC-like)" in text
