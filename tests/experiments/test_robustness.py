"""Tests for the seed-robustness experiment."""

import pytest

from repro.experiments import robustness
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def result():
    return robustness.run(scale=TEST_SCALE, benchmark="groff", seeds=(1, 2, 3))


class TestRobustness:
    def test_all_comparisons_all_seeds(self, result):
        for draws in result.comparisons.values():
            assert len(draws) == 3
            for draw in draws:
                assert 0.0 < draw.a_ratio < 0.5
                assert 0.0 < draw.b_ratio < 0.5
                assert 0.0 <= draw.p_value <= 1.0

    def test_egskew_claim_robust_across_seeds(self, result):
        """The Figure 12 claim must hold for the majority of draws."""
        assert result.win_rate("e-gskew vs gskew (h12)") >= 2 / 3

    def test_gskew_claim_mostly_robust(self, result):
        assert result.win_rate("gskew vs gshare (h4)") >= 1 / 3

    def test_distinct_seeds_give_distinct_traces(self, result):
        for draws in result.comparisons.values():
            ratios = {draw.a_ratio for draw in draws}
            assert len(ratios) > 1

    def test_render(self, result):
        text = robustness.render(result)
        assert "Robustness over seeds" in text
        assert "McNemar" in text
        assert "wins" in text

    def test_custom_comparisons(self):
        result = robustness.run(
            scale=TEST_SCALE,
            benchmark="verilog",
            seeds=(1,),
            comparisons={
                "big vs small": ("gshare:4k:h4", "gshare:64:h4", "")
            },
        )
        draws = result.comparisons["big vs small"]
        assert draws[0].a_ratio < draws[0].b_ratio
