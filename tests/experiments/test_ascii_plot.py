"""Tests for the ASCII line-chart renderer."""

import pytest

from repro.experiments.ascii_plot import MARKERS, line_chart


class TestLineChart:
    def test_contains_title_axis_and_legend(self):
        chart = line_chart(
            [0, 1, 2],
            {"a": [0.1, 0.2, 0.3], "b": [0.3, 0.2, 0.1]},
            title="T",
        )
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert "o a" in lines[-1] and "+ b" in lines[-1]
        assert any("+-" in line for line in lines)

    def test_extremes_labelled(self):
        chart = line_chart([0, 1], {"s": [0.0, 0.5]})
        assert "50.00%" in chart
        assert "0.00%" in chart

    def test_markers_present(self):
        chart = line_chart([0, 1, 2], {"s": [0.1, 0.5, 0.9]})
        assert chart.count("o") >= 3

    def test_monotone_series_renders_monotone(self):
        """The marker for a rising series must appear on strictly
        non-increasing rows (row 0 is the top)."""
        chart = line_chart([0, 1, 2, 3], {"s": [0.1, 0.2, 0.3, 0.4]})
        rows = [
            index
            for index, line in enumerate(chart.splitlines())
            if "o" in line
        ]
        assert rows == sorted(rows)

    def test_none_breaks_line(self):
        chart = line_chart([0, 1, 2], {"s": [0.1, None, 0.3]})
        assert chart.count("o") >= 2

    def test_non_percent_labels(self):
        chart = line_chart([0, 1], {"s": [10.0, 20.0]}, y_percent=False)
        assert "%" not in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart([0, 1, 2], {"s": [0.5, 0.5, 0.5]})
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0], {"s": [0.1]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [0.1]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"s": [None, None]})
        too_many = {f"s{i}": [0.1, 0.2] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError):
            line_chart([0, 1], too_many)


class TestExperimentPlots:
    def test_figure9_plot(self):
        from repro.experiments import figure9

        chart = figure9.render_plot(figure9.run())
        assert "P_dm" in chart and "P_sk" in chart

    def test_figure_plots_via_runner(self):
        from repro.experiments.runner import run_experiment

        chart = run_experiment("figure10", plot=True)
        assert "Figure 10" in chart

    def test_plot_flag_ignored_without_render_plot(self):
        from repro.experiments.runner import run_experiment

        text = run_experiment("figure3", plot=True)
        assert "Figure 3" in text  # falls back to the table renderer
