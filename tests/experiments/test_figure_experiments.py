"""Tests for the figure experiments: each asserts the paper's shape claims
at reduced scale."""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
)
from tests.conftest import TEST_SCALE

BENCHES = ("groff", "real_gcc")
SIZES = (64, 256, 1024, 4096)


class TestFigure1And2:
    @pytest.fixture(scope="class")
    def fig1(self):
        return figure1.run(scale=TEST_SCALE, benchmarks=BENCHES, sizes=SIZES)

    def test_fa_miss_shrinks_with_size(self, fig1):
        for bench in BENCHES:
            fa = fig1.curves[bench]["fa"]
            assert fa[-1] <= fa[0]

    def test_dm_above_fa(self, fig1):
        """Direct-mapped aliasing >= compulsory + capacity (conflicts
        are non-negative) at every size."""
        for bench in BENCHES:
            for scheme in ("gshare", "gselect"):
                for dm, fa in zip(
                    fig1.curves[bench][scheme], fig1.curves[bench]["fa"]
                ):
                    assert dm >= fa * 0.95

    def test_conflict_dominates_past_knee(self, fig1):
        """The Figure 1 punchline at the largest size."""
        for bench in BENCHES:
            breakdown = fig1.breakdowns[bench][-1]
            if breakdown.total > 0.01:
                assert breakdown.conflict > breakdown.capacity

    def test_figure2_runs_longer_history(self):
        result = figure2.run(
            scale=TEST_SCALE, benchmarks=("groff",), sizes=(256, 1024)
        )
        assert result.history_bits == 12
        # Longer history -> more substreams -> more total aliasing than
        # at h=4 for the same size.
        h4 = figure1.run(
            scale=TEST_SCALE, benchmarks=("groff",), sizes=(256, 1024)
        )
        assert (
            result.curves["groff"]["fa"][0]
            >= h4.curves["groff"]["fa"][0] * 0.9
        )

    def test_render(self, fig1):
        text = figure1.render(fig1)
        assert "Figure 1" in text
        assert "gselect DM" in text


class TestFigure3:
    def test_finds_scheme_dependent_conflicts(self):
        result = figure3.run()
        (a, b) = result.gshare_only_conflict
        assert a != b
        (c, d) = result.gselect_only_conflict
        assert c != d

    def test_verified_conflict_properties(self):
        from repro.predictors.gselect import gselect_index
        from repro.predictors.gshare import gshare_index

        result = figure3.run()
        n, k = result.index_bits, result.history_bits
        (a, b) = result.gshare_only_conflict
        assert gshare_index(a[0], a[1], n, k) == gshare_index(b[0], b[1], n, k)
        assert gselect_index(a[0], a[1], n, k) != gselect_index(
            b[0], b[1], n, k
        )
        (c, d) = result.gselect_only_conflict
        assert gselect_index(c[0], c[1], n, k) == gselect_index(
            d[0], d[1], n, k
        )
        assert gshare_index(c[0], c[1], n, k) != gshare_index(d[0], d[1], n, k)

    def test_render(self):
        text = figure3.render(figure3.run())
        assert "Figure 3" in text
        assert "gshare idx" in text


class TestFigure5And6:
    @pytest.fixture(scope="class")
    def fig5(self):
        return figure5.run(scale=TEST_SCALE, benchmarks=BENCHES, sizes=SIZES)

    def test_gshare_improves_with_size(self, fig5):
        for bench in BENCHES:
            curve = fig5.gshare[bench]
            assert curve[-1] < curve[0]

    def test_gskew_competitive_at_less_storage(self, fig5):
        """At the top of the grid (capacity vanished), gskew with 0.75x
        the entries is at least as good as gshare, within noise."""
        for bench in BENCHES:
            assert fig5.gskew[bench][-1] <= fig5.gshare[bench][-1] * 1.06

    def test_half_storage_claim(self, fig5):
        """gskew at 3x(N/4) entries ~ gshare at N...2N entries in the
        conflict-dominated region: compare the gskew point against the
        gshare point one grid step smaller (= 1.33x gskew's storage)."""
        for bench in BENCHES:
            # gskew at 3x256 = 768 entries vs gshare 1024 entries.
            assert fig5.gskew[bench][-2] <= fig5.gshare[bench][-2] * 1.10

    def test_figure6_uses_long_history(self):
        result = figure6.run(
            scale=TEST_SCALE, benchmarks=("groff",), sizes=(256, 1024)
        )
        assert result.history_bits == 12

    def test_render(self, fig5):
        text = figure5.render(fig5)
        assert "Figure 5" in text
        assert "gskew" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return figure7.run(
            scale=TEST_SCALE,
            benchmarks=BENCHES,
            history_lengths=(0, 4, 8),
        )

    def test_gskew_outperforms_bigger_gshare_somewhere(self, fig7):
        """The Figure 7 claim, benchmark-aggregated: despite 25% less
        storage, gskew wins at most history lengths."""
        wins = 0
        comparisons = 0
        for bench in BENCHES:
            series = fig7.curves[bench]
            gskew = series["gskew 3x512"]
            gshare = series["gshare 2k"]
            for a, b in zip(gskew, gshare):
                comparisons += 1
                if a <= b * 1.02:
                    wins += 1
        assert wins >= comparisons // 2

    def test_history_matters(self, fig7):
        """Some history beats no history for both designs."""
        for bench in BENCHES:
            for series in fig7.curves[bench].values():
                assert min(series[1:]) < series[0]

    def test_render(self, fig7):
        assert "Figure 7" in figure7.render(fig7)


class TestFigure8:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figure8.run(
            scale=TEST_SCALE, benchmarks=BENCHES, bank_sizes=(64, 256, 1024)
        )

    def test_partial_beats_total(self, fig8):
        for bench in BENCHES:
            partial = fig8.curves[bench]["gskew 3xN partial"]
            total = fig8.curves[bench]["gskew 3xN total"]
            assert sum(partial) <= sum(total) * 1.01

    def test_partial_tracks_fully_associative(self, fig8):
        """3xN tag-less partial-update gskew ~ N-entry FA LRU."""
        for bench in BENCHES:
            partial = fig8.curves[bench]["gskew 3xN partial"]
            fa = fig8.curves[bench]["FA LRU N"]
            for p, f in zip(partial, fa):
                assert p <= f * 1.15

    def test_render(self, fig8):
        assert "Figure 8" in figure8.render(fig8)


class TestFigure9And10:
    def test_full_range_curves(self):
        result = figure9.run()
        assert result.probabilities[0] == 0.0
        assert result.probabilities[-1] == 1.0
        # Endpoints coincide: no aliasing and certain aliasing.
        assert result.skewed[0] == result.direct_mapped[0] == 0.0
        assert result.skewed[-1] == pytest.approx(result.direct_mapped[-1])
        # Strictly below in the interior.
        for dm, sk in zip(
            result.direct_mapped[1:-1], result.skewed[1:-1]
        ):
            assert sk < dm

    def test_magnified_region_shows_polynomial_crush(self):
        result = figure10.run()
        assert result.magnified
        assert max(result.probabilities) <= 0.1
        # In the small-p region the skewed overhead is negligible
        # relative to the linear one-bank overhead.
        ratios = [
            sk / dm
            for dm, sk in zip(result.direct_mapped[1:], result.skewed[1:])
        ]
        assert all(r < 0.2 for r in ratios)

    def test_render(self):
        assert "Figure 9" in figure9.render(figure9.run())
        assert "Figure 10" in figure10.render(figure10.run())


class TestFigure11:
    @pytest.fixture(scope="class")
    def fig11(self):
        return figure11.run(
            scale=TEST_SCALE,
            benchmarks=("groff",),
            bank_sizes=(128, 512, 2048),
        )

    def test_extrapolation_tracks_and_overestimates(self, fig11):
        curves = fig11.curves["groff"]
        for model, measured in zip(
            curves["extrapolated"], curves["measured"]
        ):
            # "Our model always slightly overestimates" — allow noise.
            assert model >= measured * 0.85
            assert model <= measured + 0.15

    def test_both_curves_fall_with_size(self, fig11):
        curves = fig11.curves["groff"]
        assert curves["extrapolated"][-1] < curves["extrapolated"][0]
        assert curves["measured"][-1] < curves["measured"][0]

    def test_bias_measured(self, fig11):
        assert 0.3 < fig11.bias["groff"] < 0.95

    def test_render(self, fig11):
        assert "Figure 11" in figure11.render(fig11)


class TestFigure12:
    @pytest.fixture(scope="class")
    def fig12(self):
        return figure12.run(
            scale=TEST_SCALE,
            benchmarks=BENCHES,
            history_lengths=(0, 4, 10, 14),
            bank_entries=256,
            gshare_entries=2048,
        )

    def test_egskew_matches_gskew_at_short_history(self, fig12):
        for bench in BENCHES:
            series = fig12.curves[bench]
            egskew = series["e-gskew 3x256"]
            gskew = series["gskew 3x256"]
            assert egskew[0] == pytest.approx(gskew[0], abs=0.01)

    def test_egskew_beats_gskew_at_long_history(self, fig12):
        for bench in BENCHES:
            series = fig12.curves[bench]
            assert (
                series["e-gskew 3x256"][-1]
                <= series["gskew 3x256"][-1] * 1.01
            )

    def test_egskew_reaches_double_size_gshare(self, fig12):
        """3x256 e-gskew (768 entries) vs 2048-entry gshare: within a
        modest factor across the sweep (the paper: 'performs as well')."""
        for bench in BENCHES:
            series = fig12.curves[bench]
            egskew = min(series["e-gskew 3x256"])
            gshare = min(series["gshare 2k"])
            assert egskew <= gshare * 1.25

    def test_render(self, fig12):
        assert "Figure 12" in figure12.render(fig12)
