"""Tests for the Table 1 / Table 2 experiments (qualitative paper claims)."""

import pytest

from repro.experiments import table1, table2
from tests.conftest import TEST_SCALE

BENCHES = ("groff", "real_gcc", "nroff")


@pytest.fixture(scope="module")
def table1_result():
    return table1.run(scale=TEST_SCALE)


@pytest.fixture(scope="module")
def table2_result():
    return table2.run(scale=TEST_SCALE, benchmarks=BENCHES)


class TestTable1:
    def test_all_benchmarks_present(self, table1_result):
        names = [row.name for row in table1_result.rows]
        assert names == [
            "groff",
            "gs",
            "mpeg_play",
            "nroff",
            "real_gcc",
            "verilog",
        ]

    def test_orderings_match_paper(self, table1_result):
        by_name = {row.name: row for row in table1_result.rows}
        # nroff has the most dynamic branches, verilog the fewest.
        dynamics = {n: r.dynamic for n, r in by_name.items()}
        assert dynamics["nroff"] == max(dynamics.values())
        assert dynamics["verilog"] == min(dynamics.values())
        # real_gcc has the largest static footprint.
        statics = {n: r.static for n, r in by_name.items()}
        assert statics["real_gcc"] == max(statics.values())

    def test_counts_positive(self, table1_result):
        for row in table1_result.rows:
            assert row.dynamic > 0
            assert 0 < row.static <= row.dynamic

    def test_render(self, table1_result):
        text = table1.render(table1_result)
        assert "Table 1" in text
        assert "real_gcc" in text
        assert "16716" in text  # paper column present


class TestTable2:
    def test_two_bit_beats_one_bit(self, table2_result):
        for row in table2_result.rows:
            assert row.mispredict_2bit <= row.mispredict_1bit

    def test_longer_history_helps_unaliased(self, table2_result):
        for bench in BENCHES:
            h4 = table2_result.row(bench, 4)
            h12 = table2_result.row(bench, 12)
            assert h12.mispredict_2bit <= h4.mispredict_2bit * 1.05

    def test_substream_ratio_grows_with_history(self, table2_result):
        for bench in BENCHES:
            assert (
                table2_result.row(bench, 12).substream_ratio
                > table2_result.row(bench, 4).substream_ratio
            )

    def test_misprediction_rates_in_plausible_band(self, table2_result):
        for row in table2_result.rows:
            assert 0.005 < row.mispredict_2bit < 0.20

    def test_compulsory_below_capacity_scale(self, table2_result):
        for row in table2_result.rows:
            assert 0.0 < row.compulsory_ratio < 0.25

    def test_nroff_easier_than_real_gcc(self, table2_result):
        assert (
            table2_result.row("nroff", 4).mispredict_2bit
            < table2_result.row("real_gcc", 4).mispredict_2bit
        )

    def test_row_lookup_raises_on_missing(self, table2_result):
        with pytest.raises(KeyError):
            table2_result.row("doom", 4)

    def test_render(self, table2_result):
        text = table2.render(table2_result)
        assert "Table 2" in text
        assert "(4-bit history)" in text
        assert "(12-bit history)" in text
