"""Tests for the ASCII report renderers."""

import pytest

from repro.experiments.report import format_series, format_table, percent


class TestPercent:
    def test_paper_style(self):
        assert percent(0.0547) == "5.47 %"
        assert percent(0.0547, digits=1) == "5.5 %"
        assert percent(0.0) == "0.00 %"


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["bench", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert set(lines[2]) == {"-"}
        assert lines[3].endswith("1")
        assert lines[4].endswith("22")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_columns_per_series(self):
        text = format_series(
            "x",
            [1, 2],
            {"s1": [0.1, 0.2], "s2": [0.3, 0.4]},
        )
        assert "s1" in text and "s2" in text
        assert "10.00 %" in text
        assert "40.00 %" in text

    def test_missing_points_dash(self):
        text = format_series("x", [1, 2], {"s": [0.1]})
        assert "-" in text.splitlines()[-1]

    def test_none_value_dash(self):
        text = format_series("x", [1], {"s": [None]})
        assert text.splitlines()[-1].strip().endswith("-")
