"""Tests for the best-history-length experiment (paper §6 claim)."""

import pytest

from repro.experiments import best_history
from tests.conftest import TEST_SCALE


@pytest.fixture(scope="module")
def result():
    return best_history.run(
        scale=TEST_SCALE,
        benchmarks=("groff", "real_gcc"),
        history_lengths=(0, 2, 4, 6, 8, 10, 12),
        bank_entries=256,
        gshare_entries=2048,
    )


class TestBestHistory:
    def test_some_history_always_beats_none(self, result):
        for per_bench in result.curves.values():
            for curve in per_bench.values():
                assert min(curve[1:]) < curve[0]

    def test_egskew_best_history_not_shorter_than_gskew(self, result):
        """The §6 claim, in relative form: the enhanced scheme's optimum
        sits at an equal or longer history on every benchmark."""
        for benchmark in result.curves["gskew"]:
            assert result.best("egskew", benchmark) >= result.best(
                "gskew", benchmark
            ) - 2  # grid-step tolerance

    def test_best_lookup_consistent_with_curves(self, result):
        for design, per_bench in result.curves.items():
            for benchmark, curve in per_bench.items():
                best = result.best(design, benchmark)
                index = result.history_lengths.index(best)
                assert curve[index] == min(curve)

    def test_recommended_in_grid(self, result):
        for design in ("gskew", "egskew", "gshare"):
            assert result.recommended(design) in result.history_lengths

    def test_render(self, result):
        text = best_history.render(result)
        assert "Best history length" in text
        assert "RECOMMENDED" in text
