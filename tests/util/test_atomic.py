"""Tests for the shared temp-file + ``os.replace`` publication helper."""

from __future__ import annotations

import pytest

from repro.util.atomic import atomic_path, atomic_write_bytes, atomic_write_text


class TestAtomicPath:
    def test_publishes_on_success(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_path(target) as temp:
            temp.write_text("payload")
            assert temp != target
            assert temp.parent == target.parent  # same-filesystem replace
            assert not target.exists()
        assert target.read_text() == "payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_failure_publishes_nothing(self, tmp_path):
        target = tmp_path / "out.txt"
        with pytest.raises(RuntimeError):
            with atomic_path(target) as temp:
                temp.write_text("half-writ")
                raise RuntimeError("writer died")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # temp cleaned up

    def test_failure_preserves_previous_content(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        with pytest.raises(RuntimeError):
            with atomic_path(target) as temp:
                temp.write_text("new")
                raise RuntimeError("writer died")
        assert target.read_text() == "old"

    def test_suffix_lands_on_the_temp_name(self, tmp_path):
        # np.savez appends ".npz" to names that lack it; the suffix
        # keeps the temp name stable so the final replace finds it.
        with atomic_path(tmp_path / "trace.npz", suffix=".npz") as temp:
            assert temp.name.endswith(".npz")
            temp.write_bytes(b"zip-ish")
        assert (tmp_path / "trace.npz").read_bytes() == b"zip-ish"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        with atomic_path(target) as temp:
            temp.write_text("deep")
        assert target.read_text() == "deep"


class TestOneShotForms:
    def test_write_text(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "héllo\n")
        assert (tmp_path / "t.txt").read_text(encoding="utf-8") == "héllo\n"

    def test_write_bytes(self, tmp_path):
        atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert (tmp_path / "b.bin").read_bytes() == b"\x00\x01"

    def test_overwrites_existing(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "first")
        atomic_write_text(tmp_path / "t.txt", "second")
        assert (tmp_path / "t.txt").read_text() == "second"
