"""The env-var registry: typed accessors, hygiene, docs-table sync."""

from __future__ import annotations

from pathlib import Path

from repro.util import envvars

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestAccessors:
    def test_unset_variable(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert envvars.JOBS.raw() is None
        assert envvars.JOBS.text() == ""
        assert not envvars.JOBS.is_set()
        assert envvars.JOBS.int_value(7) == 7
        assert not envvars.JOBS.disabled()

    def test_int_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", " 4 ")
        assert envvars.JOBS.int_value() == 4
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert envvars.JOBS.int_value(1) == 1

    def test_float_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        assert envvars.CELL_TIMEOUT.float_value() == 2.5
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "soon")
        assert envvars.CELL_TIMEOUT.float_value(300.0) == 300.0

    def test_disabled_accepts_documented_off_values(self, monkeypatch):
        for value in ("0", "off", "NONE", " Disabled "):
            monkeypatch.setenv("REPRO_NATIVE", value)
            assert envvars.NATIVE.disabled()
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert not envvars.NATIVE.disabled()


class TestRegistry:
    def test_sorted_unique_and_typed(self):
        names = [var.name for var in envvars.REGISTRY]
        assert names == sorted(names)
        assert len(names) == len(set(names))
        for var in envvars.REGISTRY:
            assert var.name.startswith("REPRO_")
            assert var.type in envvars.TYPES
            assert var.doc.strip()

    def test_by_name_round_trips(self):
        table = envvars.by_name()
        assert set(table) == {var.name for var in envvars.REGISTRY}
        assert table["REPRO_ENGINE"] is envvars.ENGINE


class TestDocsSync:
    def test_api_md_embeds_the_generated_table(self):
        """docs/api.md carries markdown_table() verbatim between the
        markers; regenerate with `python -m repro.util.envvars`."""
        text = (REPO_ROOT / "docs" / "api.md").read_text(encoding="utf-8")
        assert envvars.markdown_table() in text
        assert text.count(envvars.TABLE_BEGIN) == 1
        assert text.count(envvars.TABLE_END) == 1
