"""Shared hypothesis strategies for differential engine fuzzing.

Every differential suite (scan vs generic, vectorized vs generic,
windowed vs generic, parallel vs serial) wants the same inputs: short
random traces with word-aligned PCs, arbitrary outcomes and a mix of
conditional/unconditional events, plus a spec drawn from the family
under test.  Drawing them from one place keeps the trace shape — the
part that decides what the fuzz can reach (aliasing, history folding,
unconditional shifts) — identical across suites.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.traces.trace import Trace

__all__ = ["trace_columns", "traces"]


@st.composite
def trace_columns(draw, max_length: int = 120):
    """Draw aligned ``(pcs, takens, conditionals)`` column lists.

    PCs are word-aligned and span 8 bits of word address, so short
    traces still alias in small tables; outcomes and conditional flags
    are unconstrained (unconditional events exercise the history-shift
    path every engine must agree on).
    """
    length = draw(st.integers(0, max_length), label="length")
    pcs = draw(
        st.lists(
            st.integers(0, 0xFF).map(lambda word: word << 2),
            min_size=length,
            max_size=length,
        ),
        label="pcs",
    )
    takens = draw(
        st.lists(st.integers(0, 1), min_size=length, max_size=length),
        label="takens",
    )
    conditionals = draw(
        st.lists(st.integers(0, 1), min_size=length, max_size=length),
        label="conditionals",
    )
    return pcs, takens, conditionals


@st.composite
def traces(draw, max_length: int = 120, name: str = "hypothesis"):
    """Draw a :class:`~repro.traces.trace.Trace` (see :func:`trace_columns`)."""
    pcs, takens, conditionals = draw(trace_columns(max_length=max_length))
    return Trace.from_columns(pcs, takens, conditionals, name=name)
