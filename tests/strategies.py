"""Shared hypothesis strategies for differential engine fuzzing.

Every differential suite (scan vs generic, vectorized vs generic,
windowed vs generic, parallel vs serial) wants the same inputs: short
random traces with word-aligned PCs, arbitrary outcomes and a mix of
conditional/unconditional events, plus a spec drawn from the family
under test.  Drawing them from one place keeps the trace shape — the
part that decides what the fuzz can reach (aliasing, history folding,
unconditional shifts) — identical across suites.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.sim.state import PredictorState
from repro.traces.trace import Trace

__all__ = ["trace_columns", "traces", "predictor_states", "STATE_SPECS"]


@st.composite
def trace_columns(draw, max_length: int = 120):
    """Draw aligned ``(pcs, takens, conditionals)`` column lists.

    PCs are word-aligned and span 8 bits of word address, so short
    traces still alias in small tables; outcomes and conditional flags
    are unconstrained (unconditional events exercise the history-shift
    path every engine must agree on).
    """
    length = draw(st.integers(0, max_length), label="length")
    pcs = draw(
        st.lists(
            st.integers(0, 0xFF).map(lambda word: word << 2),
            min_size=length,
            max_size=length,
        ),
        label="pcs",
    )
    takens = draw(
        st.lists(st.integers(0, 1), min_size=length, max_size=length),
        label="takens",
    )
    conditionals = draw(
        st.lists(st.integers(0, 1), min_size=length, max_size=length),
        label="conditionals",
    )
    return pcs, takens, conditionals


@st.composite
def traces(draw, max_length: int = 120, name: str = "hypothesis"):
    """Draw a :class:`~repro.traces.trace.Trace` (see :func:`trace_columns`)."""
    pcs, takens, conditionals = draw(trace_columns(max_length=max_length))
    return Trace.from_columns(pcs, takens, conditionals, name=name)


#: One spec per predictor family with serializable state — every counter
#: layout (bank/banks/pht), both history kinds, bias latches, tagged and
#: LRU tables, and the trivial static predictors.
STATE_SPECS = (
    "bimodal:64",
    "gshare:64:h5",
    "gselect:64:h4",
    "gskew:3x64:h4:total",
    "gskew:3x64:h4:partial",
    "gskew:1x64:h4:lazy",
    "egskew:3x64:h6",
    "agree:64:h5",
    "bimode:64:h5",
    "2bcgskew:64:h5",
    "hybrid:64:h5",
    "pas:16/h3:64",
    "fa:16:h3",
    "unaliased:h3",
    "taken",
    "nottaken",
)


@st.composite
def predictor_states(draw, specs=STATE_SPECS, max_length: int = 80):
    """Draw ``(spec, predictor, state)`` with organically dirtied state.

    The predictor is trained on a drawn trace first, so the captured
    :class:`~repro.sim.state.PredictorState` holds reachable (not
    uniformly random) counter/history/bias/table contents — the states
    the serving layer actually snapshots.
    """
    spec = draw(st.sampled_from(specs), label="spec")
    trace = draw(traces(max_length=max_length))
    predictor = make_predictor(spec)
    simulate(predictor, trace)
    return spec, predictor, PredictorState.capture(predictor)
