"""Tests for the ideal unaliased (infinite-table) predictor."""

from repro.predictors.unaliased import UnaliasedPredictor
from repro.sim.engine import simulate


class TestFirstEncounterAccounting:
    def test_first_encounter_not_scored(self):
        predictor = UnaliasedPredictor(history_bits=4)
        # First encounter returns the actual outcome -> never a miss.
        assert predictor.predict_and_update(0x400100, False) is False
        assert predictor.first_encounters == 1
        assert predictor.dynamic_branches == 1

    def test_second_encounter_scored(self):
        predictor = UnaliasedPredictor(history_bits=0)
        predictor.predict_and_update(0x400100, True)  # allocates weak-taken
        assert predictor.predict_and_update(0x400100, True) is True
        assert predictor.first_encounters == 1

    def test_compulsory_ratio(self):
        predictor = UnaliasedPredictor(history_bits=0)
        for pc in (0x100, 0x104, 0x100, 0x104, 0x100):
            predictor.predict_and_update(pc, True)
        assert predictor.compulsory_aliasing_ratio == 2 / 5


class TestSubstreamStats:
    def test_substream_counting(self):
        predictor = UnaliasedPredictor(history_bits=2)
        # Same address under different histories = different substreams.
        predictor.history.reset(0b00)
        predictor.train(0x400100, True)
        predictor.history.reset(0b01)
        predictor.train(0x400100, True)
        predictor.history.reset(0b01)
        predictor.train(0x400104, True)
        assert predictor.substream_count == 3

    def test_substream_ratio(self):
        predictor = UnaliasedPredictor(history_bits=2)
        for history in (0b00, 0b01, 0b10):
            predictor.history.reset(history)
            predictor.predict_and_update(0x400100, True)
        assert predictor.static_branch_count == 1
        assert predictor.substream_ratio == 3.0


class TestIdealness:
    def test_no_aliasing_between_addresses(self):
        """Unlike finite tables, far-apart addresses never interfere."""
        predictor = UnaliasedPredictor(history_bits=0)
        for __ in range(6):
            predictor.predict_and_update(0x400100, False)
            predictor.predict_and_update(0x99400100, True)
        assert predictor.predict(0x400100) is False
        assert predictor.predict(0x99400100) is True

    def test_perfect_on_deterministic_pattern_with_enough_history(self):
        """A TTN loop pattern is fully predictable once history >= 2."""
        predictor = UnaliasedPredictor(history_bits=4)
        pattern = [True, True, False] * 40
        misses = 0
        seen = 0
        for taken in pattern:
            prediction = predictor.predict_and_update(0x400100, taken)
            seen += 1
            if seen > 30 and prediction != taken:  # after warm-up
                misses += 1
        assert misses == 0

    def test_beats_finite_tables(self, tiny_trace):
        from repro.predictors.gshare import GsharePredictor

        ideal = simulate(UnaliasedPredictor(4), tiny_trace)
        finite = simulate(GsharePredictor(5, 4), tiny_trace)
        assert ideal.misprediction_ratio <= finite.misprediction_ratio

    def test_one_bit_worse_than_two_bit(self, tiny_trace):
        one = simulate(UnaliasedPredictor(4, counter_bits=1), tiny_trace)
        two = simulate(UnaliasedPredictor(4, counter_bits=2), tiny_trace)
        assert two.misprediction_ratio <= one.misprediction_ratio


class TestReset:
    def test_reset_clears_everything(self):
        predictor = UnaliasedPredictor(history_bits=4)
        predictor.predict_and_update(0x400100, True)
        predictor.reset()
        assert predictor.substream_count == 0
        assert predictor.first_encounters == 0
        assert predictor.dynamic_branches == 0
        assert predictor.history.value == 0
