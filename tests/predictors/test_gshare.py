"""Tests for gshare, including the paper's footnote-1 alignment rule."""

from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.gshare import GsharePredictor, gshare_index


class TestIndexFunction:
    def test_zero_history_is_truncation(self):
        assert gshare_index(0x400104, 0, 10, 0) == (0x400104 >> 2) & 0x3FF

    def test_footnote1_alignment(self):
        """History shorter than the index XORs against the HIGH end of
        the index field."""
        index_bits, history_bits = 10, 4
        base = gshare_index(0x0, 0, index_bits, history_bits)
        flipped = gshare_index(0x0, 0b0001, index_bits, history_bits)
        # History bit h1 lands at index bit position 6 (= 10 - 4).
        assert flipped == base ^ (1 << 6)

    def test_history_equal_to_index_width(self):
        assert gshare_index(0x0, 0b1111111111, 10, 10) == 0b1111111111

    def test_overlong_history_folds(self):
        """Every history bit still influences the index when k > n."""
        index_bits, history_bits = 4, 8
        base = gshare_index(0x0, 0, index_bits, history_bits)
        for bit in range(history_bits):
            flipped = gshare_index(0x0, 1 << bit, index_bits, history_bits)
            assert flipped != base, f"history bit {bit} lost"

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=0, max_value=16),
    )
    def test_index_in_range(self, address, history, index_bits, history_bits):
        index = gshare_index(address, history, index_bits, history_bits)
        assert 0 <= index < (1 << index_bits)

    def test_word_alignment_dropped(self):
        """Addresses 1-3 bytes apart (same word) index identically."""
        assert gshare_index(0x400100, 5, 10, 4) == gshare_index(
            0x400103, 5, 10, 4
        )


class TestPredictor:
    def test_learns_biased_branch(self):
        predictor = GsharePredictor(index_bits=6, history_bits=4)
        for __ in range(10):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_history_affects_index(self):
        predictor = GsharePredictor(index_bits=6, history_bits=4)
        predictor.history.reset(0b0000)
        index_a = predictor.index(0x400100)
        predictor.history.reset(0b1010)
        index_b = predictor.index(0x400100)
        assert index_a != index_b

    def test_fused_path_matches_generic(self):
        import random

        rng = random.Random(5)
        fused = GsharePredictor(5, 4)
        generic = GsharePredictor(5, 4)
        for __ in range(400):
            address = 0x400000 + rng.randrange(128) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected
        assert fused.bank.counters.values == generic.bank.counters.values

    def test_unconditional_shifts_history_only(self):
        predictor = GsharePredictor(6, 4)
        counters_before = list(predictor.bank.counters.values)
        predictor.notify_unconditional(0x400200, True)
        assert predictor.history.value == 1
        assert predictor.bank.counters.values == counters_before

    def test_reset(self):
        predictor = GsharePredictor(6, 4)
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.history.value == 0
        assert all(v == 2 for v in predictor.bank.counters.values)

    def test_storage_and_entries(self):
        predictor = GsharePredictor(12, 8)
        assert predictor.entries == 4096
        assert predictor.storage_bits == 8192

    def test_aliasing_is_real(self):
        """Two branches mapping to the same entry interfere."""
        predictor = GsharePredictor(index_bits=2, history_bits=0)
        a, b = 0x400000, 0x400000 + (4 << 2)  # same index in 4 entries
        assert predictor.index(a) == predictor.index(b)
        for __ in range(4):
            predictor.predict_and_update(a, False)
        assert predictor.predict(b) is False  # b inherits a's training
