"""Tests for the bimodal (PC-indexed) predictor."""

from repro.predictors.bimodal import BimodalPredictor


class TestBimodal:
    def test_history_free(self):
        predictor = BimodalPredictor(index_bits=6)
        # notify_outcome is a no-op: predictions depend on PC only.
        predictor.notify_unconditional(0x400200, True)
        index_before = predictor.index(0x400100)
        predictor.notify_outcome(0x400300, False)
        assert predictor.index(0x400100) == index_before

    def test_learns_per_pc(self):
        predictor = BimodalPredictor(index_bits=6)
        for __ in range(4):
            predictor.predict_and_update(0x400100, False)
            predictor.predict_and_update(0x400104, True)
        assert predictor.predict(0x400100) is False
        assert predictor.predict(0x400104) is True

    def test_loop_hysteresis(self):
        """The classic 2-bit win: one loop exit doesn't flip the
        prediction for the next loop entry."""
        predictor = BimodalPredictor(index_bits=4)
        pc = 0x400040
        for __ in range(8):
            predictor.predict_and_update(pc, True)
        assert predictor.predict_and_update(pc, False) is True  # exit miss
        assert predictor.predict(pc) is True  # still predicts taken

    def test_fused_path_matches_generic(self):
        import random

        rng = random.Random(2)
        fused = BimodalPredictor(4)
        generic = BimodalPredictor(4)
        for __ in range(200):
            address = 0x400000 + rng.randrange(32) * 4
            taken = rng.random() < 0.5
            expected = generic.predict(address)
            generic.train(address, taken)
            assert fused.predict_and_update(address, taken) == expected

    def test_storage(self):
        assert BimodalPredictor(10).storage_bits == 2048
        assert BimodalPredictor(10, counter_bits=1).storage_bits == 1024

    def test_reset(self):
        predictor = BimodalPredictor(4)
        for __ in range(4):
            predictor.predict_and_update(0x400000, False)
        predictor.reset()
        assert predictor.predict(0x400000) is True
