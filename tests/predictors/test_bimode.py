"""Tests for the bi-mode predictor (Lee, Chen & Mudge, MICRO 1997)."""

import random

from repro.predictors.bimode import BiModePredictor
from repro.sim.engine import simulate


def _make(direction_bits=6, history=4):
    return BiModePredictor(direction_bits, history)


class TestStructure:
    def test_storage_counts_three_tables(self):
        predictor = BiModePredictor(10, 8, choice_index_bits=9)
        assert predictor.storage_bits == 512 * 2 + 2 * 1024 * 2

    def test_direction_tables_prebiased(self):
        predictor = _make()
        assert predictor.taken_table.counters.values[0] == 2  # weak taken
        assert predictor.not_taken_table.counters.values[0] == 1  # weak NT

    def test_choice_selects_table(self):
        predictor = _make()
        pc = 0x400100
        # Drive the choice table to not-taken for this PC.
        for __ in range(4):
            predictor.predict_and_update(pc, False)
        assert predictor._selected(pc) is predictor.not_taken_table


class TestAntiAliasing:
    def test_separates_opposite_biased_populations(self):
        """Two opposite-biased branches that would destroy each other in
        one gshare table land in different direction tables."""
        predictor = _make(direction_bits=2, history=0)
        a, b = 0x400100, 0x400104  # distinct choice entries
        for __ in range(8):
            predictor.predict_and_update(a, True)
            predictor.predict_and_update(b, False)
        assert predictor._selected(a) is predictor.taken_table
        assert predictor._selected(b) is predictor.not_taken_table
        assert predictor.predict(a) is True
        assert predictor.predict(b) is False

    def test_choice_exception_rule(self):
        """A 'wrong' choice whose direction table predicted correctly is
        not migrated."""
        predictor = _make()
        pc = 0x400100
        choice_index = predictor._choice_index(pc)
        # Choice says taken (reset weakly-taken); teach the taken table
        # that this context is not-taken.
        for __ in range(3):
            predictor.taken_table.train(pc, False)
        before = predictor.choice.values[choice_index]
        predictor.train(pc, False)  # choice wrong, direction right
        assert predictor.choice.values[choice_index] == before

    def test_competitive_with_gshare(self, small_trace):
        from repro.predictors.gshare import GsharePredictor

        bimode = simulate(_make(direction_bits=8, history=4), small_trace)
        gshare = simulate(GsharePredictor(8, 4), small_trace)
        assert (
            bimode.misprediction_ratio <= gshare.misprediction_ratio * 1.10
        )


class TestMechanics:
    def test_fused_path_matches_generic(self):
        rng = random.Random(23)
        fused = _make()
        generic = _make()
        for __ in range(400):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected
        assert fused.choice.values == generic.choice.values
        assert (
            fused.taken_table.counters.values
            == generic.taken_table.counters.values
        )

    def test_reset(self):
        predictor = _make()
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.history.value == 0
        assert predictor.taken_table.counters.values[0] == 2
        assert predictor.not_taken_table.counters.values[0] == 1

    def test_via_spec_factory(self, tiny_trace):
        from repro.sim.config import make_predictor

        result = simulate(make_predictor("bimode:256:h6"), tiny_trace)
        assert 0.0 < result.misprediction_ratio < 0.5
