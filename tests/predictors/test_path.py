"""Tests for the path-history predictors (Nair, paper ref [9])."""

import pytest

from repro.predictors.path import (
    PathHistory,
    PathHistoryPredictor,
    SkewedPathPredictor,
)
from repro.sim.engine import simulate


class TestPathHistory:
    def test_push_records_low_address_bits(self):
        path = PathHistory(depth=2, bits_per_branch=4)
        path.push(0x400010)  # (>>2) & 0xF = 0x4
        path.push(0x400024)  # (>>2) & 0xF = 0x9
        assert path.value == (0x4 << 4) | 0x9

    def test_depth_window(self):
        path = PathHistory(depth=2, bits_per_branch=4)
        for address in (0x10, 0x20, 0x30):
            path.push(address)
        # Only the last two elements survive.
        assert path.value == (((0x20 >> 2) & 0xF) << 4) | ((0x30 >> 2) & 0xF)

    def test_zero_depth_inert(self):
        path = PathHistory(depth=0)
        path.push(0x400010)
        assert path.value == 0
        assert path.width == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PathHistory(depth=-1)
        with pytest.raises(ValueError):
            PathHistory(depth=2, bits_per_branch=0)

    def test_reset(self):
        path = PathHistory(depth=2)
        path.push(0x400010)
        path.reset()
        assert path.value == 0


class TestPathHistoryPredictor:
    def test_disambiguates_by_path(self):
        """A branch whose direction depends on its *caller* (not on any
        direction history) is learnable from path history."""
        predictor = PathHistoryPredictor(index_bits=8, depth=1,
                                         bits_per_branch=8)
        target = 0x400100
        caller_a, caller_b = 0x400200, 0x400300
        misses = 0
        for step in range(200):
            if step % 2 == 0:
                predictor.notify_unconditional(caller_a)
                taken = True
            else:
                predictor.notify_unconditional(caller_b)
                taken = False
            prediction = predictor.predict_and_update(target, taken)
            if step > 20 and prediction != taken:
                misses += 1
        assert misses == 0

    def test_path_updated_by_conditionals_and_unconditionals(self):
        predictor = PathHistoryPredictor(index_bits=6, depth=2)
        predictor.predict_and_update(0x400010, True)
        value_after_cond = predictor.path.value
        assert value_after_cond != 0
        predictor.notify_unconditional(0x400020)
        assert predictor.path.value != value_after_cond

    def test_storage(self):
        predictor = PathHistoryPredictor(index_bits=10, depth=4,
                                         bits_per_branch=4)
        assert predictor.storage_bits == 2048 + 16

    def test_reset(self):
        predictor = PathHistoryPredictor(index_bits=6, depth=2)
        for __ in range(8):
            predictor.predict_and_update(0x400010, False)
        predictor.reset()
        assert predictor.path.value == 0
        assert predictor.predict(0x400010) is True

    def test_competitive_on_real_trace(self, small_trace):
        from repro.predictors.bimodal import BimodalPredictor

        path = simulate(
            PathHistoryPredictor(index_bits=8, depth=4), small_trace
        )
        bimodal = simulate(BimodalPredictor(8), small_trace)
        assert path.misprediction_ratio <= bimodal.misprediction_ratio * 1.15


class TestSkewedPathPredictor:
    def test_learns_biased_branch(self):
        predictor = SkewedPathPredictor(bank_index_bits=6, depth=2)
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_skewing_helps_under_pressure(self, small_trace):
        """At matched total entries, the skewed path predictor should
        not lose badly to the single-bank one (and typically wins in
        conflict-heavy regions)."""
        single = simulate(
            PathHistoryPredictor(index_bits=9, depth=4), small_trace
        )
        skewed = simulate(
            SkewedPathPredictor(bank_index_bits=7, depth=4), small_trace
        )
        assert skewed.misprediction_ratio <= single.misprediction_ratio * 1.15

    def test_policies(self, tiny_trace):
        for policy in ("total", "partial", "lazy"):
            predictor = SkewedPathPredictor(
                bank_index_bits=6, depth=2, update_policy=policy
            )
            result = simulate(predictor, tiny_trace)
            assert 0.0 < result.misprediction_ratio < 0.5

    def test_reset(self):
        predictor = SkewedPathPredictor(bank_index_bits=6, depth=2)
        for __ in range(8):
            predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.predict(0x400100) is True
