"""Tests for the agree predictor (Sprangle et al., ISCA 1997)."""

import random

from repro.predictors.agree import AgreePredictor
from repro.sim.engine import simulate


def _make(index_bits=6, history=4):
    return AgreePredictor(index_bits, history)


class TestBiasLatching:
    def test_bias_latched_on_first_outcome(self):
        predictor = _make()
        predictor.predict_and_update(0x400100, False)
        assert predictor.bias_bit(0x400100) is False
        # Later outcomes do not re-latch.
        predictor.predict_and_update(0x400100, True)
        assert predictor.bias_bit(0x400100) is False

    def test_default_bias_taken(self):
        assert _make().bias_bit(0x400100) is True

    def test_prediction_is_bias_xnor_agree(self):
        predictor = _make()
        predictor.predict_and_update(0x400100, False)  # bias = not-taken
        # PHT reset state predicts "agree", so prediction = bias = False.
        assert predictor.predict(0x400100) is False


class TestAntiAliasing:
    def test_opposite_biased_branches_coexist_in_one_entry(self):
        """The agree selling point: two opposite branches sharing a PHT
        entry both keep predicting correctly, because both AGREE with
        their own bias."""
        # A single-entry PHT but a private bias bit per branch.
        predictor = AgreePredictor(
            index_bits=0, history_bits=0, bias_table_bits=6
        )
        a, b = 0x400100, 0x400104
        misses = 0
        for step in range(40):
            if predictor.predict_and_update(a, True) is not True:
                misses += 1
            if predictor.predict_and_update(b, False) is not False:
                misses += 1
        assert misses <= 2  # only warm-up, despite total PHT sharing

    def test_learns_disagreeing_branch(self):
        """A branch whose behaviour flips after bias latching must still
        be predictable (the PHT learns 'disagree')."""
        predictor = _make()
        predictor.predict_and_update(0x400100, True)  # bias: taken
        for __ in range(6):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_competitive_with_gshare(self, small_trace):
        from repro.predictors.gshare import GsharePredictor

        agree = simulate(_make(index_bits=8, history=4), small_trace)
        gshare = simulate(GsharePredictor(8, 4), small_trace)
        assert agree.misprediction_ratio <= gshare.misprediction_ratio * 1.10


class TestMechanics:
    def test_fused_path_matches_generic(self):
        rng = random.Random(17)
        fused = _make()
        generic = _make()
        for __ in range(400):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected
        assert fused.pht.counters.values == generic.pht.counters.values
        assert fused._bias == generic._bias

    def test_storage_counts_bias_bits(self):
        predictor = AgreePredictor(10, 8, bias_table_bits=9)
        assert predictor.storage_bits == 1024 * 2 + 512

    def test_reset(self):
        predictor = _make()
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.bias_bit(0x400100) is True
        assert predictor.history.value == 0

    def test_via_spec_factory(self, tiny_trace):
        from repro.sim.config import make_predictor

        result = simulate(make_predictor("agree:1k:h6"), tiny_trace)
        assert 0.0 < result.misprediction_ratio < 0.5
