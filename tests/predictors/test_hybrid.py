"""Tests for the McFarling combining (hybrid) predictor."""

from repro.predictors.hybrid import HybridPredictor
from repro.sim.engine import simulate


def _make():
    return HybridPredictor(
        chooser_index_bits=6,
        bimodal_index_bits=6,
        gshare_index_bits=6,
        history_bits=4,
    )


class TestChooser:
    def test_chooser_moves_toward_correct_component(self):
        predictor = _make()
        pc = 0x400100
        # Train bimodal right and gshare wrong... both see the same
        # stream, so instead drive a history-dependent pattern that only
        # gshare can learn and check the chooser migrates to gshare.
        pattern = [True, True, False, False] * 60
        for taken in pattern:
            predictor.predict_and_update(pc, taken)
        assert predictor._selects_gshare(pc) is True

    def test_chooser_untouched_when_components_agree(self):
        predictor = _make()
        pc = 0x400100
        before = list(predictor.chooser.values)
        # Both components start weakly-taken: they agree, so a taken
        # outcome changes counters but not the chooser.
        predictor.predict_and_update(pc, True)
        assert predictor.chooser.values == before


class TestBehaviour:
    def test_learns_biased_branch(self):
        predictor = _make()
        for __ in range(10):
            predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_fused_path_matches_generic(self):
        import random

        rng = random.Random(4)
        fused = _make()
        generic = _make()
        for __ in range(400):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected

    def test_beats_or_matches_components(self, small_trace):
        """The tournament should not lose badly to either component of
        the same table size."""
        from repro.predictors.bimodal import BimodalPredictor
        from repro.predictors.gshare import GsharePredictor

        hybrid = simulate(_make(), small_trace).misprediction_ratio
        bimodal = simulate(
            BimodalPredictor(6), small_trace
        ).misprediction_ratio
        gshare = simulate(
            GsharePredictor(6, 4), small_trace
        ).misprediction_ratio
        assert hybrid <= min(bimodal, gshare) * 1.10

    def test_storage_counts_all_tables(self):
        predictor = _make()
        expected = 64 * 2 + (64 * 2 + 64 * 2)
        assert predictor.storage_bits == expected

    def test_reset(self):
        predictor = _make()
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.gshare.history.value == 0
        assert all(v == 2 for v in predictor.chooser.values)
