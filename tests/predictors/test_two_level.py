"""Tests for the PAs per-address predictors (paper future work)."""

import pytest

from repro.predictors.two_level import PAsPredictor, SkewedPAsPredictor
from repro.sim.engine import simulate


class TestPAs:
    def test_rejects_history_wider_than_index(self):
        with pytest.raises(ValueError):
            PAsPredictor(
                history_table_bits=4, history_bits=8, index_bits=6
            )

    def test_per_address_histories_are_independent(self):
        predictor = PAsPredictor(
            history_table_bits=6, history_bits=4, index_bits=10
        )
        predictor.notify_outcome(0x400100, True)
        predictor.notify_outcome(0x400100, True)
        predictor.notify_outcome(0x400104, False)
        assert predictor.histories.read(0x400100) == 0b11
        assert predictor.histories.read(0x400104) == 0b0

    def test_learns_local_pattern(self):
        """A TN-alternating branch is perfectly predictable from its own
        2-bit local history — the PAs selling point."""
        predictor = PAsPredictor(
            history_table_bits=6, history_bits=4, index_bits=10
        )
        pc = 0x400100
        misses = 0
        for step in range(120):
            taken = step % 2 == 0
            prediction = predictor.predict_and_update(pc, taken)
            if step > 40 and prediction != taken:
                misses += 1
        assert misses == 0

    def test_unconditional_does_not_touch_local_history(self):
        predictor = PAsPredictor(
            history_table_bits=6, history_bits=4, index_bits=10
        )
        predictor.notify_outcome(0x400100, True)
        predictor.notify_unconditional(0x400100, True)
        assert predictor.histories.read(0x400100) == 0b1

    def test_storage_counts_both_levels(self):
        predictor = PAsPredictor(
            history_table_bits=6, history_bits=4, index_bits=10
        )
        assert predictor.storage_bits == 64 * 4 + 1024 * 2

    def test_reset(self):
        predictor = PAsPredictor(
            history_table_bits=6, history_bits=4, index_bits=10
        )
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.histories.read(0x400100) == 0


class TestSkewedPAs:
    def test_learns_local_pattern(self):
        predictor = SkewedPAsPredictor(
            history_table_bits=6, history_bits=4, bank_index_bits=8
        )
        pc = 0x400100
        misses = 0
        for step in range(120):
            taken = step % 2 == 0
            prediction = predictor.predict_and_update(pc, taken)
            if step > 40 and prediction != taken:
                misses += 1
        assert misses == 0

    def test_storage(self):
        predictor = SkewedPAsPredictor(
            history_table_bits=6, history_bits=4, bank_index_bits=8
        )
        assert predictor.storage_bits == 64 * 4 + 3 * 256 * 2

    def test_competitive_with_pas_at_less_storage(self, small_trace):
        pas = PAsPredictor(
            history_table_bits=7, history_bits=5, index_bits=9
        )
        skewed = SkewedPAsPredictor(
            history_table_bits=7, history_bits=5, bank_index_bits=7
        )
        assert skewed.storage_bits < pas.storage_bits
        pas_result = simulate(pas, small_trace)
        skewed_result = simulate(skewed, small_trace)
        # Skewing should at least not hurt much at 0.75x storage.
        assert (
            skewed_result.misprediction_ratio
            <= pas_result.misprediction_ratio * 1.15
        )

    def test_reset(self):
        predictor = SkewedPAsPredictor(
            history_table_bits=6, history_bits=4, bank_index_bits=8
        )
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.histories.read(0x400100) == 0
        assert predictor.predict(0x400100) is True
