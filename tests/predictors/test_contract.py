"""Contract tests: every predictor obeys the BranchPredictor interface.

One battery of behavioural contracts run against every predictor the
spec factory can build.  These are the guarantees the simulation engine
and the experiments rely on, so a new predictor that violates one fails
loudly here rather than corrupting an experiment.
"""

import random

import pytest

from repro.sim.config import make_predictor

SPECS = [
    "taken",
    "nottaken",
    "bimodal:64",
    "gshare:64:h4",
    "gshare:64:h4:c1",
    "gselect:64:h3",
    "gskew:3x32:h4:partial",
    "gskew:3x32:h4:total",
    "gskew:3x32:h4:lazy",
    "gskew:5x32:h4:partial",
    "egskew:3x32:h4:partial",
    "fa:32:h4",
    "unaliased:h4",
    "hybrid:32:h4",
    "agree:64:h4",
    "bimode:32:h4",
    "pas:32/h4:256",
]


def _drive(predictor, steps=300, seed=5):
    rng = random.Random(seed)
    outcomes = []
    for __ in range(steps):
        address = 0x400000 + rng.randrange(64) * 4
        taken = rng.random() < 0.7
        outcomes.append(predictor.predict_and_update(address, taken))
        if rng.random() < 0.2:
            predictor.notify_unconditional(0x500000 + rng.randrange(16) * 4)
    return outcomes


@pytest.mark.parametrize("spec", SPECS)
class TestPredictorContract:
    def test_predictions_are_booleans(self, spec):
        predictor = make_predictor(spec)
        for outcome in _drive(predictor, steps=100):
            assert isinstance(outcome, bool)

    def test_deterministic_replay(self, spec):
        """Identical input streams produce identical predictions."""
        a = _drive(make_predictor(spec))
        b = _drive(make_predictor(spec))
        assert a == b

    def test_predict_is_pure(self, spec):
        predictor = make_predictor(spec)
        _drive(predictor, steps=120)
        first = predictor.predict(0x400100)
        for __ in range(5):
            assert predictor.predict(0x400100) == first

    def test_reset_restores_power_on_behaviour(self, spec):
        fresh = make_predictor(spec)
        used = make_predictor(spec)
        _drive(used, steps=200)
        used.reset()
        assert _drive(fresh, seed=11) == _drive(used, seed=11)

    def test_storage_bits_nonnegative_and_stable(self, spec):
        predictor = make_predictor(spec)
        before = predictor.storage_bits
        assert before >= 0
        _drive(predictor, steps=50)
        # Finite-hardware designs must not grow; only the unaliased
        # (explicitly infinite) predictor may.
        if spec != "unaliased:h4":
            assert predictor.storage_bits == before

    def test_fused_step_matches_decomposed_step(self, spec):
        """predict_and_update == predict; train; notify_outcome."""
        if spec == "unaliased:h4":
            # The unaliased predictor deviates by design: on a first
            # encounter predict_and_update reports the actual outcome
            # (the paper does not score compulsory references), while
            # bare predict() has no outcome to report.
            pytest.skip("first-encounter accounting deviates by design")
        rng = random.Random(31)
        fused = make_predictor(spec)
        decomposed = make_predictor(spec)
        for __ in range(250):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.6
            expected = decomposed.predict(address)
            decomposed.train(address, taken)
            decomposed.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected

    def test_unconditional_notifications_never_crash(self, spec):
        predictor = make_predictor(spec)
        for address in range(0x400000, 0x400100, 4):
            predictor.notify_unconditional(address)
        predictor.predict_and_update(0x400100, True)

    def test_handles_extreme_addresses(self, spec):
        predictor = make_predictor(spec)
        for address in (0x0, 0x3, 0xFFFF_FFFC, 0x7FFF_FFFF_FFFC):
            prediction = predictor.predict_and_update(address, True)
            assert isinstance(prediction, bool)
