"""Tests for gselect (concatenation indexing)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.predictors.gselect import GselectPredictor, gselect_index


class TestIndexFunction:
    def test_concatenation_layout(self):
        # 6 index bits, 2 history bits: [a3 a2 a1 a0 | h2 h1]
        index = gselect_index(0b111100 << 2, 0b01, 6, 2)
        assert index == (0b1100 << 2) | 0b01

    def test_zero_history_is_truncation(self):
        assert gselect_index(0x400104, 7, 8, 0) == (0x400104 >> 2) & 0xFF

    def test_history_swamps_index_when_long(self):
        """k >= n leaves no address bits at all (the paper's explanation
        for gselect's weakness at long histories)."""
        index_bits = 4
        for address in (0x400000, 0x400100, 0x7FF000):
            assert gselect_index(address, 0b1011, index_bits, 4) == 0b1011
            assert gselect_index(address, 0xFB, index_bits, 8) == 0xB

    @given(
        st.integers(min_value=0, max_value=2**30),
        st.integers(min_value=0, max_value=2**16 - 1),
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=0, max_value=16),
    )
    def test_index_in_range(self, address, history, index_bits, history_bits):
        index = gselect_index(address, history, index_bits, history_bits)
        assert 0 <= index < (1 << index_bits)

    def test_same_address_different_history_distinct(self):
        """With k < n, every history value gets a distinct entry."""
        indices = {
            gselect_index(0x400100, h, 8, 3) for h in range(8)
        }
        assert len(indices) == 8


class TestPredictor:
    def test_learns_biased_branch(self):
        predictor = GselectPredictor(index_bits=6, history_bits=2)
        for __ in range(10):
            predictor.predict_and_update(0x400100, True)
        assert predictor.predict(0x400100) is True

    def test_fused_path_matches_generic(self):
        import random

        rng = random.Random(8)
        fused = GselectPredictor(5, 3)
        generic = GselectPredictor(5, 3)
        for __ in range(300):
            address = 0x400000 + rng.randrange(64) * 4
            taken = rng.random() < 0.4
            expected = generic.predict(address)
            generic.train(address, taken)
            generic.notify_outcome(address, taken)
            assert fused.predict_and_update(address, taken) == expected

    def test_storage(self):
        assert GselectPredictor(11, 4).storage_bits == 2 * 2048

    def test_reset(self):
        predictor = GselectPredictor(6, 2)
        predictor.predict_and_update(0x400100, False)
        predictor.reset()
        assert predictor.history.value == 0
        assert predictor.predict(0x400100) is True
