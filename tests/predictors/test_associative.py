"""Tests for the fully-associative LRU tagged predictor (Figure 8)."""

import pytest

from repro.predictors.associative import FullyAssociativePredictor


class TestLRUBehaviour:
    def test_miss_predicts_always_taken(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=0)
        assert predictor.predict(0x400100) is True

    def test_hit_uses_counter(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=0)
        predictor.predict_and_update(0x400100, False)  # install weak-NT
        assert predictor.predict(0x400100) is False

    def test_lru_eviction_order(self):
        predictor = FullyAssociativePredictor(entries=2, history_bits=0)
        predictor.predict_and_update(0x100, False)
        predictor.predict_and_update(0x104, False)
        # Touch 0x100 so 0x104 becomes LRU.
        predictor.predict_and_update(0x100, False)
        predictor.predict_and_update(0x108, False)  # evicts 0x104
        assert predictor.predict(0x104) is True  # miss -> static taken
        assert predictor.predict(0x100) is False  # still resident

    def test_capacity_never_exceeded(self):
        predictor = FullyAssociativePredictor(entries=3, history_bits=0)
        for pc in range(0x100, 0x100 + 40, 4):
            predictor.predict_and_update(pc, True)
        assert len(predictor.table) == 3

    def test_history_part_of_tag(self):
        predictor = FullyAssociativePredictor(entries=8, history_bits=2)
        predictor.history.reset(0b00)
        predictor.train(0x400100, False)
        predictor.history.reset(0b01)
        # Different history: different tag, so this is a miss.
        assert predictor.predict(0x400100) is True

    def test_hit_miss_counters(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=0)
        predictor.predict_and_update(0x100, True)
        predictor.predict_and_update(0x100, True)
        predictor.predict_and_update(0x104, True)
        assert predictor.misses == 2
        assert predictor.hits == 1
        assert predictor.miss_ratio == pytest.approx(2 / 3)

    def test_storage_includes_tags(self):
        predictor = FullyAssociativePredictor(
            entries=64, history_bits=4, counter_bits=2, tag_bits=32
        )
        assert predictor.storage_bits == 64 * 34

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            FullyAssociativePredictor(entries=0, history_bits=4)

    def test_reset(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=2)
        predictor.predict_and_update(0x100, False)
        predictor.reset()
        assert len(predictor.table) == 0
        assert predictor.hits == 0 and predictor.misses == 0
        assert predictor.history.value == 0

    def test_train_installs_on_miss(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=0)
        predictor.train(0x400100, False)
        assert predictor.predict(0x400100) is False

    def test_counter_saturation_on_hits(self):
        predictor = FullyAssociativePredictor(entries=4, history_bits=0)
        for __ in range(5):
            predictor.predict_and_update(0x100, True)
        key = (0x100 >> 2, 0)
        assert predictor.table[key] == 3
