"""Tests for the flush-on-context-switch wrapper."""

from repro.predictors.flush import FlushOnSwitchPredictor
from repro.predictors.gshare import GsharePredictor
from repro.sim.engine import simulate


def _wrapped(**kwargs):
    return FlushOnSwitchPredictor(GsharePredictor(6, 4), **kwargs)


USER = 0x0040_0000
KERNEL = 0x8000_0000


class TestSwitchDetection:
    def test_counts_switches(self):
        predictor = _wrapped()
        predictor.predict_and_update(USER, True)
        predictor.predict_and_update(USER + 4, True)
        predictor.predict_and_update(KERNEL, True)
        predictor.predict_and_update(USER, True)
        assert predictor.switches == 2

    def test_unconditionals_also_switch(self):
        predictor = _wrapped()
        predictor.notify_unconditional(USER)
        predictor.notify_unconditional(KERNEL)
        assert predictor.switches == 1

    def test_no_switch_within_segment(self):
        predictor = _wrapped()
        for offset in range(0, 64, 4):
            predictor.predict_and_update(USER + offset, True)
        assert predictor.switches == 0


class TestFlushSemantics:
    def test_history_flushed(self):
        predictor = _wrapped(flush_history=True, flush_tables=False)
        for __ in range(5):
            predictor.predict_and_update(USER, True)
        assert predictor.inner.history.value != 0
        predictor.predict_and_update(KERNEL, True)
        # After the switch event itself, history holds only that branch.
        assert predictor.inner.history.value == 1

    def test_tables_survive_history_flush(self):
        predictor = _wrapped(flush_history=True, flush_tables=False)
        for __ in range(8):
            predictor.predict_and_update(USER, False)
        predictor.predict_and_update(KERNEL, True)
        predictor.inner.history.reset()
        assert predictor.inner.predict(USER) is False  # still trained

    def test_tables_flushed(self):
        predictor = _wrapped(flush_history=True, flush_tables=True)
        for __ in range(8):
            predictor.predict_and_update(USER, False)
        predictor.predict_and_update(KERNEL, True)
        predictor.inner.history.reset()
        assert predictor.inner.predict(USER) is True  # back to reset state

    def test_reset_clears_wrapper_state(self):
        predictor = _wrapped()
        predictor.predict_and_update(USER, True)
        predictor.predict_and_update(KERNEL, True)
        predictor.reset()
        assert predictor.switches == 0

    def test_storage_delegates(self):
        predictor = _wrapped()
        assert predictor.storage_bits == predictor.inner.storage_bits

    def test_name_encodes_flush_mode(self):
        assert _wrapped(flush_history=True).name.endswith("+flushH")
        assert _wrapped(
            flush_history=True, flush_tables=True
        ).name.endswith("+flushHT")


class TestBehaviour:
    def test_history_flush_is_cheap_table_flush_is_costly(self, small_trace):
        shared = simulate(
            GsharePredictor(8, 6), small_trace
        ).misprediction_ratio
        history_flush = simulate(
            FlushOnSwitchPredictor(
                GsharePredictor(8, 6), flush_history=True
            ),
            small_trace,
        ).misprediction_ratio
        table_flush = simulate(
            FlushOnSwitchPredictor(
                GsharePredictor(8, 6), flush_history=True, flush_tables=True
            ),
            small_trace,
        ).misprediction_ratio
        assert abs(history_flush - shared) < 0.02
        assert table_flush > shared
