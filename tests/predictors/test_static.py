"""Tests for the static baseline predictors."""

from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    BTFNPredictor,
)


class TestStaticPredictors:
    def test_always_taken(self):
        predictor = AlwaysTakenPredictor()
        assert predictor.predict(0x400100) is True
        predictor.predict_and_update(0x400100, False)
        assert predictor.predict(0x400100) is True
        assert predictor.storage_bits == 0

    def test_always_not_taken(self):
        predictor = AlwaysNotTakenPredictor()
        assert predictor.predict(0x400100) is False
        predictor.train(0x400100, True)
        assert predictor.predict(0x400100) is False
        assert predictor.storage_bits == 0

    def test_btfn_backward_taken(self):
        predictor = BTFNPredictor()
        predictor.set_target(0x400000)  # target below branch: backward
        assert predictor.predict(0x400100) is True

    def test_btfn_forward_not_taken(self):
        predictor = BTFNPredictor()
        predictor.set_target(0x400200)
        assert predictor.predict(0x400100) is False

    def test_btfn_defaults_forward_without_target(self):
        predictor = BTFNPredictor()
        assert predictor.predict(0x400100) is False

    def test_btfn_target_cleared_by_train(self):
        predictor = BTFNPredictor()
        predictor.set_target(0x400000)
        predictor.train(0x400100, True)
        assert predictor.predict(0x400100) is False

    def test_reset(self):
        predictor = BTFNPredictor()
        predictor.set_target(0x400000)
        predictor.reset()
        assert predictor.predict(0x400100) is False
