"""Integration tests: the paper's headline claims, end to end.

These run the real pipeline (synthetic IBS clones -> simulation engine ->
predictors) at a moderate scale and assert the qualitative results the
paper reports.  They are the contract of the reproduction: if one of
these fails, the repository no longer reproduces the paper.
"""

import pytest

from repro.sim.config import make_predictor
from repro.sim.engine import simulate
from repro.traces.synthetic.workloads import ibs_trace

SCALE = 0.5
BENCHES = ("groff", "real_gcc", "nroff")


def _ratio(spec, trace):
    return simulate(make_predictor(spec), trace).misprediction_ratio


@pytest.fixture(scope="module", params=BENCHES)
def trace(request):
    return ibs_trace(request.param, scale=SCALE)


class TestHeadlineClaims:
    def test_gskew_beats_equal_storage_gshare_past_knee(self, trace):
        """Section 5.1: for comparable storage, 3-bank partial-update
        gskew consistently beats 1-bank gshare once gshare's capacity
        aliasing has vanished.  3x1024 = 3072 entries vs 4096 gshare."""
        gskew = _ratio("gskew:3x1k:h4:partial", trace)
        gshare = _ratio("gshare:4k:h4", trace)
        assert gskew <= gshare * 1.05

    def test_half_storage_claim(self, trace):
        """'A skewed branch predictor with partial update achieves the
        same prediction accuracy as a 1-bank predictor, but requires
        approximately half the storage resources': gskew with 3x512 =
        1536 entries vs gshare with 4096."""
        gskew = _ratio("gskew:3x512:h4:partial", trace)
        gshare = _ratio("gshare:4k:h4", trace)
        assert gskew <= gshare * 1.15

    def test_partial_update_beats_total(self, trace):
        partial = _ratio("gskew:3x512:h4:partial", trace)
        total = _ratio("gskew:3x512:h4:total", trace)
        assert partial <= total * 1.02

    def test_gskew_partial_matches_fully_associative(self, trace):
        """Figure 8: a 3xN tag-less gskew with partial update delivers
        approximately an N-entry fully-associative LRU predictor."""
        gskew = _ratio("gskew:3x256:h4:partial", trace)
        associative = _ratio("fa:256:h4", trace)
        assert gskew == pytest.approx(associative, abs=0.02)

    def test_gshare_beats_gselect(self, trace):
        """Section 3.2: gshare's lower aliasing ratio translates to a
        lower misprediction rate at equal size and history."""
        gshare = _ratio("gshare:1k:h8", trace)
        gselect = _ratio("gselect:1k:h8", trace)
        assert gshare <= gselect * 1.05

    def test_egskew_extends_useful_history(self, trace):
        """Section 6: at long history, e-gskew beats plain gskew."""
        egskew = _ratio("egskew:3x512:h12:partial", trace)
        gskew = _ratio("gskew:3x512:h12:partial", trace)
        assert egskew <= gskew * 1.02

    def test_egskew_matches_gshare_at_double_storage(self, trace):
        """Section 6: 3x4K e-gskew ~ 32K gshare (scaled /8)."""
        egskew = min(
            _ratio(f"egskew:3x512:h{h}:partial", trace) for h in (4, 8, 12)
        )
        gshare = min(
            _ratio(f"gshare:4k:h{h}", trace) for h in (4, 8, 12)
        )
        assert egskew <= gshare * 1.15

    def test_five_banks_marginal(self, trace):
        """Section 5.1: very little benefit from five banks."""
        three = _ratio("gskew:3x512:h4:partial", trace)
        five = _ratio("gskew:5x512:h4:partial", trace)
        assert abs(five - three) < 0.01

    def test_dynamic_beats_static(self, trace):
        taken = _ratio("taken", trace)
        bimodal = _ratio("bimodal:1k", trace)
        gskew = _ratio("gskew:3x512:h4:partial", trace)
        assert gskew < bimodal < taken


class TestCrossPredictorSanity:
    def test_unaliased_is_floor_for_same_history(self, trace):
        """No finite table beats the infinite one at equal history."""
        ideal = _ratio("unaliased:h8", trace)
        for spec in ("gshare:4k:h8", "gskew:3x1k:h8:partial"):
            assert ideal <= _ratio(spec, trace) + 0.005

    def test_more_storage_never_hurts_much(self, trace):
        small = _ratio("gshare:256:h4", trace)
        large = _ratio("gshare:8k:h4", trace)
        assert large <= small

    def test_results_deterministic(self, trace):
        assert _ratio("gskew:3x256:h4:partial", trace) == _ratio(
            "gskew:3x256:h4:partial", trace
        )
