"""Smoke tests: every shipped example runs to completion.

Examples are part of the public API surface — if one breaks, a user's
first contact with the library breaks.  Each test imports the example
as a module and runs its ``main()`` (traces are memoised process-wide,
so the cost is dominated by the first example only).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = [
    "quickstart",
    "aliasing_analysis",
    "design_space",
    "custom_workload",
    "analytical_model",
    "statistical_comparison",
    "performance_impact",
]


def _load(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [f"{name}.py"])
    module = _load(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_quickstart_reports_both_predictors(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "gskew" in out
    assert "gshare" in out
    assert "%" in out


def test_design_space_respects_budget(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["design_space.py", "4096"])
    _load("design_space").main()
    out = capsys.readouterr().out
    assert "best design under 4096 bits" in out
