"""Tests for the fully-associative LRU tag store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aliasing.distance import LastUseDistanceTracker
from repro.aliasing.lru_table import FullyAssociativeLRUTable


class TestLRUTable:
    def test_compulsory_vs_capacity_split(self):
        table = FullyAssociativeLRUTable(2)
        table.access("a")  # compulsory
        table.access("b")  # compulsory
        table.access("c")  # compulsory, evicts a
        table.access("a")  # capacity (seen before, distance 2)
        assert table.misses == 4
        assert table.compulsory_misses == 3
        assert table.capacity_misses == 1

    def test_lru_order_updates_on_hit(self):
        table = FullyAssociativeLRUTable(2)
        table.access("a")
        table.access("b")
        table.access("a")  # refresh a; b is now LRU
        table.access("c")  # evicts b
        assert table.access("a") is False
        assert table.access("b") is True

    def test_miss_ratio(self):
        table = FullyAssociativeLRUTable(4)
        for key in ("a", "b", "a", "b"):
            table.access(key)
        assert table.miss_ratio == pytest.approx(0.5)

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            FullyAssociativeLRUTable(0)

    def test_reset(self):
        table = FullyAssociativeLRUTable(2)
        table.access("a")
        table.reset()
        assert table.accesses == 0
        assert table.access("a") is True
        assert table.compulsory_misses == 1

    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.integers(min_value=0, max_value=12), max_size=100),
    )
    @settings(max_examples=60)
    def test_hit_iff_distance_below_capacity(self, entries, keys):
        """The defining property linking LRU tables to stack distances:
        an access hits an N-entry LRU table iff its last-use distance is
        strictly below N."""
        table = FullyAssociativeLRUTable(entries)
        tracker = LastUseDistanceTracker(capacity=max(1, len(keys)))
        for key in keys:
            distance = tracker.reference(key)
            miss = table.access(key)
            if distance is None:
                assert miss
            else:
                assert miss == (distance >= entries)
