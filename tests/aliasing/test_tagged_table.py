"""Tests for the direct-mapped tagged aliasing instrument."""

import pytest

from repro.aliasing.tagged_table import TaggedDirectMappedTable


class TestTaggedTable:
    def test_first_touch_is_cold_miss(self):
        table = TaggedDirectMappedTable(4, lambda key: key % 4)
        assert table.access(0) is True
        assert table.cold_misses == 1
        assert table.misses == 1

    def test_repeat_hit(self):
        table = TaggedDirectMappedTable(4, lambda key: key % 4)
        table.access(1)
        assert table.access(1) is False
        assert table.misses == 1

    def test_conflict_detected(self):
        table = TaggedDirectMappedTable(4, lambda key: key % 4)
        table.access(1)
        assert table.access(5) is True  # same entry, different tag
        assert table.access(1) is True  # 1 was displaced
        assert table.cold_misses == 1  # only the very first touch

    def test_miss_ratio(self):
        table = TaggedDirectMappedTable(2, lambda key: key % 2)
        for key in (0, 2, 0, 2):  # ping-pong on entry 0
            table.access(key)
        table.access(1)
        table.access(1)
        assert table.miss_ratio == pytest.approx(5 / 6)

    def test_peek(self):
        table = TaggedDirectMappedTable(4, lambda key: key % 4)
        table.access(6)
        assert table.peek(2) == 6

    def test_reset(self):
        table = TaggedDirectMappedTable(4, lambda key: key % 4)
        table.access(1)
        table.reset()
        assert table.accesses == 0
        assert table.misses == 0
        assert table.peek(1) is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            TaggedDirectMappedTable(0, lambda key: 0)

    def test_tuple_keys(self):
        """(address, history) pairs are the intended key type."""
        table = TaggedDirectMappedTable(8, lambda key: key[0] % 8)
        assert table.access((3, 0b01)) is True
        assert table.access((3, 0b01)) is False
        assert table.access((3, 0b10)) is True  # same entry, new history
