"""Tests for destructive/harmless/constructive classification."""

import pytest

from repro.aliasing.interference import classify_interference
from repro.traces.trace import BranchRecord, Trace


def _interleaved(pc_a, pc_b, outcomes_a, outcomes_b):
    records = []
    for a, b in zip(outcomes_a, outcomes_b):
        records.append(BranchRecord(pc=pc_a, taken=a, conditional=True))
        records.append(BranchRecord(pc=pc_b, taken=b, conditional=True))
    return Trace.from_records(records, name="interleaved")


class TestClassification:
    def test_counts_partition_conditionals(self, small_trace):
        breakdown = classify_interference(
            small_trace, entries=128, history_bits=2
        )
        total = (
            breakdown.unaliased_accesses
            + breakdown.destructive
            + breakdown.harmless
            + breakdown.constructive
            + breakdown.first_encounters
        )
        assert total == breakdown.conditional_branches
        assert breakdown.conditional_branches == small_trace.conditional_count

    def test_destructive_dominates_constructive(self, small_trace):
        """Young et al.'s observation, which the paper leans on."""
        breakdown = classify_interference(
            small_trace, entries=128, history_bits=4
        )
        assert breakdown.destructive > breakdown.constructive

    def test_crafted_destructive_case(self):
        """Two opposite-biased branches sharing one entry destroy each
        other's predictions."""
        # bimodal scheme, 1 entry: everything shares entry 0.
        trace = _interleaved(
            0x100, 0x104, [True] * 40, [False] * 40
        )
        breakdown = classify_interference(
            trace, entries=1, history_bits=0, scheme="bimodal"
        )
        assert breakdown.destructive > 20
        assert breakdown.constructive == 0

    def test_harmless_case(self):
        """Two same-direction branches sharing an entry do no damage."""
        trace = _interleaved(0x100, 0x104, [True] * 40, [True] * 40)
        breakdown = classify_interference(
            trace, entries=1, history_bits=0, scheme="bimodal"
        )
        assert breakdown.destructive <= 1  # warm-up effects at most
        assert breakdown.harmless > 50

    def test_no_aliasing_in_huge_table(self, tiny_trace):
        breakdown = classify_interference(
            tiny_trace, entries=1 << 16, history_bits=0, scheme="bimodal"
        )
        assert breakdown.destructive == 0
        assert breakdown.harmless == 0
        assert breakdown.constructive == 0

    def test_ratios(self):
        trace = _interleaved(0x100, 0x104, [True] * 10, [False] * 10)
        breakdown = classify_interference(
            trace, entries=1, history_bits=0, scheme="bimodal"
        )
        assert breakdown.destructive_ratio == pytest.approx(
            breakdown.destructive / 20
        )
        assert breakdown.aliased_accesses == (
            breakdown.destructive
            + breakdown.harmless
            + breakdown.constructive
        )

    def test_rejects_non_power_of_two(self, tiny_trace):
        with pytest.raises(ValueError):
            classify_interference(tiny_trace, entries=3, history_bits=0)
