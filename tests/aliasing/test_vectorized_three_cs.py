"""Equivalence tests for the one-pass vectorized 3Cs engine.

The contract under test is *bit identity*: for every workload, scheme,
table size and history length the vectorized engine must reproduce the
streaming reference's integer counts exactly — same dataclass, ``==``
equal — including the degenerate corners (one-entry tables, no history,
empty traces).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.aliasing.distance import LastUseDistanceTracker
from repro.aliasing.three_cs import (
    measure_aliasing,
    measure_aliasing_reference,
    pair_index_fn,
    pair_stream,
)
from repro.aliasing.vectorized import (
    last_use_distances,
    measure_aliasing_sweep,
    measure_aliasing_vectorized,
    pair_columns,
    pair_keys,
    pair_last_use_distances,
    scheme_indices,
    supports,
)
from repro.traces.synthetic.workloads import IBS_BENCHMARKS, ibs_trace
from repro.traces.trace import BranchRecord, Trace

#: Scale keeping the 6-benchmark equivalence sweep affordable in CI.
EQUIV_SCALE = 0.04

SCHEMES = ("gshare", "gselect")


def _empty_trace() -> Trace:
    return Trace.from_records([], name="empty")


class TestPairStreamEquivalence:
    @pytest.mark.parametrize("history_bits", [0, 1, 6, 20])
    def test_pair_columns_matches_pair_stream(
        self, small_trace, history_bits
    ):
        words, histories = pair_columns(small_trace, history_bits)
        expected = list(pair_stream(small_trace, history_bits))
        assert len(words) == len(histories) == len(expected)
        actual = list(zip((int(w) for w in words), (int(h) for h in histories)))
        assert actual == expected

    def test_pair_columns_rejects_unsupported_history(self, tiny_trace):
        with pytest.raises(ValueError):
            pair_columns(tiny_trace, 64)

    def test_pair_columns_empty_trace(self):
        words, histories = pair_columns(_empty_trace(), 4)
        assert len(words) == 0 and len(histories) == 0

    @pytest.mark.parametrize("history_bits", [0, 6])
    def test_pair_keys_factorisation(self, small_trace, history_bits):
        # Contract: equal keys exactly where the (word, history) pairs
        # are equal — the only property the distance/tag instruments use.
        words, histories = pair_columns(small_trace, history_bits)
        keys = pair_keys(words, histories, history_bits)
        pairs = list(zip(words.tolist(), histories.tolist()))
        by_pair = {}
        for pair, key in zip(pairs, keys.tolist()):
            by_pair.setdefault(pair, set()).add(key)
        assert all(len(ks) == 1 for ks in by_pair.values())
        assert len({ks.pop() for ks in by_pair.values()}) == len(by_pair)

    def test_pair_keys_packing_fast_path(self):
        words = np.array([3, 3, 7], dtype=np.uint64)
        histories = np.array([1, 2, 1], dtype=np.uint64)
        keys = pair_keys(words, histories, history_bits=4)
        assert keys.tolist() == [(3 << 4) | 1, (3 << 4) | 2, (7 << 4) | 1]

    def test_pair_keys_rank_compression_fallback(self):
        # A word address too large for the shift packing forces the
        # rank-compression path; factorisation must still be exact.
        words = np.array(
            [1 << 62, 5, 1 << 62, 5, 9], dtype=np.uint64
        )
        histories = np.array([1, 2, 1, 3, 2], dtype=np.uint64)
        keys = pair_keys(words, histories, history_bits=4)
        assert keys[0] == keys[2]
        distinct = {(int(w), int(h)) for w, h in zip(words, histories)}
        assert len(set(keys.tolist())) == len(distinct)


class TestSchemeIndexEquivalence:
    @pytest.mark.parametrize("scheme", ("gshare", "gselect", "bimodal"))
    @pytest.mark.parametrize("index_bits", [0, 3, 7])
    @pytest.mark.parametrize("history_bits", [0, 4, 10])
    def test_matches_scalar_index_fn(
        self, small_trace, scheme, index_bits, history_bits
    ):
        # Covers both gshare folding regimes (history_bits <=/> index
        # bits), both gselect regimes, and the index_bits = 0 corner that
        # once hung the scalar engine.
        words, histories = pair_columns(small_trace, history_bits)
        vectorized = scheme_indices(
            scheme, words, histories, index_bits, history_bits
        )
        reference = pair_index_fn(scheme, index_bits, history_bits)
        expected = [
            reference((int(w), int(h))) for w, h in zip(words, histories)
        ]
        assert vectorized.tolist() == expected

    def test_unknown_scheme_rejected(self, tiny_trace):
        words, histories = pair_columns(tiny_trace, 4)
        with pytest.raises(ValueError):
            scheme_indices("perceptron", words, histories, 5, 4)
        with pytest.raises(ValueError):
            scheme_indices("perceptron", words, histories, 5, 0)


class TestDistanceEquivalence:
    def test_matches_streaming_tracker_random_streams(self):
        rng = random.Random(2024)
        for trial in range(8):
            n = rng.randint(1, 400)
            keys = np.array(
                [rng.randrange(1, 40) for _ in range(n)], dtype=np.uint64
            )
            tracker = LastUseDistanceTracker(capacity=n)
            expected = [tracker.reference(int(k)) for k in keys]
            actual = last_use_distances(keys)
            assert [None if d < 0 else int(d) for d in actual] == expected

    def test_matches_streaming_tracker_on_trace(self, small_trace):
        distances = pair_last_use_distances(small_trace, history_bits=6)
        tracker = LastUseDistanceTracker(capacity=len(small_trace))
        expected = [
            tracker.reference(pair)
            for pair in pair_stream(small_trace, history_bits=6)
        ]
        assert [None if d < 0 else int(d) for d in distances] == expected

    def test_empty_stream(self):
        assert len(last_use_distances(np.empty(0, dtype=np.uint64))) == 0


class TestBitIdentity:
    @pytest.mark.parametrize("workload", IBS_BENCHMARKS)
    def test_all_ibs_workloads(self, workload):
        trace = ibs_trace(workload, scale=EQUIV_SCALE)
        sizes = [32, 256, 2048]
        sweep = measure_aliasing_sweep(trace, sizes, 4, schemes=SCHEMES)
        for entries in sizes:
            reference = measure_aliasing_reference(
                trace, entries, 4, schemes=SCHEMES
            )
            assert sweep[entries] == reference

    @pytest.mark.parametrize("history_bits", [0, 1, 4, 12])
    def test_history_lengths(self, small_trace, history_bits):
        vectorized = measure_aliasing_vectorized(
            small_trace, 128, history_bits, schemes=SCHEMES
        )
        reference = measure_aliasing_reference(
            small_trace, 128, history_bits, schemes=SCHEMES
        )
        assert vectorized == reference

    def test_single_entry_table(self, tiny_trace):
        assert measure_aliasing_vectorized(
            tiny_trace, 1, 4, schemes=SCHEMES
        ) == measure_aliasing_reference(tiny_trace, 1, 4, schemes=SCHEMES)

    def test_empty_trace(self):
        trace = _empty_trace()
        assert measure_aliasing_vectorized(
            trace, 64, 4, schemes=SCHEMES
        ) == measure_aliasing_reference(trace, 64, 4, schemes=SCHEMES)

    def test_unconditional_only_trace(self):
        trace = Trace.from_records(
            [BranchRecord(pc=0x100, taken=True, conditional=False)] * 6,
            name="jumps",
        )
        assert measure_aliasing_vectorized(
            trace, 64, 4, schemes=SCHEMES
        ) == measure_aliasing_reference(trace, 64, 4, schemes=SCHEMES)

    def test_bimodal_scheme(self, tiny_trace):
        assert measure_aliasing_vectorized(
            tiny_trace, 64, 4, schemes=("bimodal",)
        ) == measure_aliasing_reference(
            tiny_trace, 64, 4, schemes=("bimodal",)
        )


class TestSweepConsistency:
    def test_sweep_equals_single_size_calls(self, tiny_trace):
        sizes = [1, 64, 512]
        sweep = measure_aliasing_sweep(tiny_trace, sizes, 4, schemes=SCHEMES)
        assert sorted(sweep) == sorted(sizes)
        for entries in sizes:
            assert sweep[entries] == measure_aliasing_vectorized(
                tiny_trace, entries, 4, schemes=SCHEMES
            )

    def test_rejects_bad_sizes_before_working(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_aliasing_sweep(tiny_trace, [64, 100], 4)
        with pytest.raises(ValueError):
            measure_aliasing_sweep(tiny_trace, [0], 4)


class TestDispatch:
    def test_auto_uses_vectorized_when_supported(self, tiny_trace):
        assert supports(4)
        assert measure_aliasing(
            tiny_trace, 64, 4
        ) == measure_aliasing_reference(tiny_trace, 64, 4)

    def test_auto_falls_back_on_long_history(self, tiny_trace):
        assert not supports(64)
        auto = measure_aliasing(tiny_trace, 64, 64, schemes=("gselect",))
        reference = measure_aliasing_reference(
            tiny_trace, 64, 64, schemes=("gselect",)
        )
        assert auto == reference

    def test_explicit_vectorized_rejects_long_history(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_aliasing(tiny_trace, 64, 64, engine="vectorized")

    def test_unknown_engine_rejected(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_aliasing(tiny_trace, 64, 4, engine="gpu")
