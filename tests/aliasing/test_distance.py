"""Tests for the Fenwick tree and last-use-distance tracker."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aliasing.distance import (
    FenwickTree,
    LastUseDistanceTracker,
    distance_histogram,
)


def brute_force_distances(keys):
    """Reference implementation: scan backwards, count distinct keys."""
    out = []
    for i, key in enumerate(keys):
        previous = None
        for j in range(i - 1, -1, -1):
            if keys[j] == key:
                previous = j
                break
        if previous is None:
            out.append(None)
        else:
            out.append(len(set(keys[previous + 1 : i])))
    return out


class TestFenwickTree:
    def test_prefix_sums(self):
        tree = FenwickTree(8)
        tree.add(0, 1)
        tree.add(3, 2)
        tree.add(7, 5)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(2) == 1
        assert tree.prefix_sum(3) == 3
        assert tree.prefix_sum(7) == 8
        assert tree.prefix_sum(-1) == 0
        assert tree.prefix_sum(100) == 8

    def test_suffix_count(self):
        tree = FenwickTree(8)
        tree.add(1, 1)
        tree.add(5, 1)
        assert tree.suffix_count(0) == 2
        assert tree.suffix_count(1) == 1
        assert tree.suffix_count(5) == 0

    def test_negative_delta(self):
        tree = FenwickTree(4)
        tree.add(2, 1)
        tree.add(2, -1)
        assert tree.total == 0
        assert tree.prefix_sum(3) == 0

    def test_bounds(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.add(4, 1)
        with pytest.raises(IndexError):
            tree.add(-1, 1)
        with pytest.raises(ValueError):
            FenwickTree(0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=-3, max_value=3),
            ),
            max_size=60,
        )
    )
    def test_matches_naive_array(self, operations):
        tree = FenwickTree(32)
        array = [0] * 32
        for position, delta in operations:
            tree.add(position, delta)
            array[position] += delta
        for position in range(-1, 33):
            expected = sum(array[: max(0, position + 1)])
            assert tree.prefix_sum(position) == expected


class TestLastUseDistanceTracker:
    def test_documented_example(self):
        tracker = LastUseDistanceTracker(capacity=8)
        observed = [tracker.reference(x) for x in ["a", "b", "a", "a", "b"]]
        assert observed == [None, None, 1, 0, 1]

    def test_capacity_overflow(self):
        tracker = LastUseDistanceTracker(capacity=2)
        tracker.reference("a")
        tracker.reference("b")
        with pytest.raises(OverflowError):
            tracker.reference("c")

    def test_counters(self):
        tracker = LastUseDistanceTracker(capacity=8)
        for key in ("a", "b", "a"):
            tracker.reference(key)
        assert tracker.distinct_keys == 2
        assert tracker.references == 3

    @given(
        st.lists(st.integers(min_value=0, max_value=9), max_size=80)
    )
    @settings(max_examples=60)
    def test_matches_brute_force(self, keys):
        tracker = LastUseDistanceTracker(capacity=max(1, len(keys)))
        observed = [tracker.reference(key) for key in keys]
        assert observed == brute_force_distances(keys)

    def test_random_large_stream(self):
        rng = random.Random(19)
        keys = [rng.randrange(40) for __ in range(800)]
        tracker = LastUseDistanceTracker(capacity=len(keys))
        observed = [tracker.reference(key) for key in keys]
        assert observed == brute_force_distances(keys)


class TestDistanceHistogram:
    def test_bucketing(self):
        buckets, first = distance_histogram([None, 0, 1, 2, 3, 7, 8, None])
        # d=0 -> bucket 0; d=1,2 -> bucket 1; d=3..6 -> bucket 2; etc.
        assert first == 2
        assert buckets[0] == 1
        assert buckets[1] == 2
        assert buckets[2] == 1
        assert buckets[3] == 2  # d=7 (8->bit_length 4... check) and d=8

    def test_empty(self):
        assert distance_histogram([]) == ([], 0)

    def test_total_preserved(self):
        distances = [None, 5, 3, None, 0, 100]
        buckets, first = distance_histogram(distances)
        assert first + sum(buckets) == len(distances)
