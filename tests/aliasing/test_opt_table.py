"""Tests for Belady-OPT fully-associative simulation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aliasing.lru_table import FullyAssociativeLRUTable
from repro.aliasing.opt_table import simulate_opt


def lru_misses(keys, entries):
    table = FullyAssociativeLRUTable(entries)
    for key in keys:
        table.access(key)
    return table.misses


class TestBasics:
    def test_empty_stream(self):
        result = simulate_opt([], 4)
        assert result.misses == 0
        assert result.miss_ratio == 0.0

    def test_all_compulsory_when_capacity_sufficient(self):
        keys = ["a", "b", "c", "a", "b", "c"]
        result = simulate_opt(keys, 3)
        assert result.misses == 3
        assert result.compulsory_misses == 3
        assert result.capacity_misses == 0

    def test_textbook_belady_case(self):
        """The classic sequence where OPT beats LRU."""
        keys = [1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]
        opt = simulate_opt(keys, 3).misses
        lru = lru_misses(keys, 3)
        assert opt == 7  # known OPT value for this sequence
        assert lru == 10  # known LRU value

    def test_capacity_one(self):
        keys = ["a", "b", "a"]
        result = simulate_opt(keys, 1)
        assert result.misses == 3

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            simulate_opt(["a"], 0)


class TestOptimality:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=0, max_value=9), max_size=80),
    )
    @settings(max_examples=80)
    def test_never_worse_than_lru(self, entries, keys):
        assert simulate_opt(keys, entries).misses <= lru_misses(keys, entries)

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=0, max_value=9), max_size=60),
    )
    @settings(max_examples=60)
    def test_compulsory_misses_are_distinct_keys(self, entries, keys):
        result = simulate_opt(keys, entries)
        assert result.compulsory_misses == len(set(keys))
        assert result.misses >= result.compulsory_misses

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=60))
    def test_huge_capacity_only_compulsory(self, keys):
        result = simulate_opt(keys, 1000)
        assert result.misses == len(set(keys))

    def test_monotone_in_capacity(self):
        rng = random.Random(11)
        keys = [rng.randrange(30) for __ in range(500)]
        misses = [simulate_opt(keys, n).misses for n in (2, 4, 8, 16, 32)]
        assert misses == sorted(misses, reverse=True)

    def test_random_streams_vs_lru(self):
        rng = random.Random(13)
        for __ in range(5):
            keys = [rng.randrange(20) for __ in range(300)]
            for entries in (3, 7, 12):
                assert (
                    simulate_opt(keys, entries).misses
                    <= lru_misses(keys, entries)
                )
