"""Tests for the 3Cs aliasing decomposition."""

import pytest

from repro.aliasing.three_cs import (
    measure_aliasing,
    pair_index_fn,
    pair_stream,
)
from repro.traces.trace import BranchRecord, Trace


def _trace(records):
    return Trace.from_records(records, name="crafted")


class TestPairStream:
    def test_history_includes_unconditional(self):
        trace = _trace(
            [
                BranchRecord(pc=0x100, taken=True, conditional=True),
                BranchRecord(pc=0x104, taken=True, conditional=False),
                BranchRecord(pc=0x108, taken=False, conditional=True),
            ]
        )
        pairs = list(pair_stream(trace, history_bits=4))
        # Second conditional sees history (T, T) from branch 1 + jump.
        assert pairs == [(0x100 >> 2, 0b0), (0x108 >> 2, 0b11)]

    def test_unconditional_not_emitted(self):
        trace = _trace(
            [BranchRecord(pc=0x100, taken=True, conditional=False)] * 5
        )
        assert list(pair_stream(trace, 4)) == []

    def test_zero_history(self):
        trace = _trace(
            [BranchRecord(pc=0x100, taken=True, conditional=True)] * 2
        )
        assert list(pair_stream(trace, 0)) == [(0x40, 0), (0x40, 0)]


class TestPairIndexFn:
    def test_schemes_dispatch(self):
        for scheme in ("gshare", "gselect", "bimodal"):
            fn = pair_index_fn(scheme, 6, 4)
            assert 0 <= fn((0x123, 0b1010)) < 64

    def test_bimodal_ignores_history(self):
        fn = pair_index_fn("bimodal", 6, 4)
        assert fn((0x123, 0)) == fn((0x123, 0b1111))

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            pair_index_fn("ghistory", 6, 4)


class TestMeasureAliasing:
    def test_decomposition_identities(self, small_trace):
        breakdowns = measure_aliasing(
            small_trace, entries=256, history_bits=4
        )
        for breakdown in breakdowns.values():
            assert 0.0 <= breakdown.compulsory <= 1.0
            assert 0.0 <= breakdown.capacity <= 1.0
            assert breakdown.conflict >= 0.0
            assert breakdown.fully_associative == pytest.approx(
                breakdown.compulsory + breakdown.capacity
            )
            # total ~ compulsory + capacity + conflict by construction
            assert breakdown.total <= 1.0
            assert breakdown.accesses == small_trace.conditional_count

    def test_capacity_shrinks_with_size(self, small_trace):
        small = measure_aliasing(small_trace, 64, 4)["gshare"]
        large = measure_aliasing(small_trace, 2048, 4)["gshare"]
        assert large.capacity <= small.capacity
        # Compulsory is size-independent.
        assert large.compulsory == pytest.approx(small.compulsory)

    def test_conflict_dominates_at_large_sizes(self, small_trace):
        """The paper's Figure 1 punchline: once the table holds the
        working set, what remains is mostly conflict."""
        breakdown = measure_aliasing(small_trace, 4096, 4)["gshare"]
        if breakdown.total > 0.005:
            assert breakdown.conflict > breakdown.capacity

    def test_gselect_worse_than_gshare(self, small_trace):
        """The paper: gselect has a higher aliasing ratio than gshare."""
        breakdowns = measure_aliasing(small_trace, 256, 8)
        assert (
            breakdowns["gselect"].total >= breakdowns["gshare"].total * 0.9
        )

    def test_rejects_non_power_of_two(self, tiny_trace):
        with pytest.raises(ValueError):
            measure_aliasing(tiny_trace, 100, 4)
        with pytest.raises(ValueError):
            measure_aliasing(tiny_trace, 0, 4)

    def test_single_scheme_selection(self, tiny_trace):
        breakdowns = measure_aliasing(
            tiny_trace, 64, 4, schemes=("bimodal",)
        )
        assert set(breakdowns) == {"bimodal"}
