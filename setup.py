"""Setup shim; all metadata lives in setup.cfg.

No pyproject.toml on purpose: pip's isolated (PEP 517) builds download
setuptools/wheel from the network, and this repository targets offline
environments.  The setup.py/setup.cfg path installs with whatever
setuptools is already present.
"""

from setuptools import setup

setup()
